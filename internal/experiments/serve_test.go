package experiments

import (
	"strings"
	"testing"
)

// TestServeParallelDeterminism extends the byte-identical guarantee to
// the serving scenarios: serve-flash fans its autoscale/no-autoscale
// pair across the worker pool and both runs lazily populate the shared
// cost database, so it is the serving analogue of the figure sweeps'
// TestParallelMatchesSequential. workers=1 and workers=N must render
// identical bytes for the same seed.
func TestServeParallelDeterminism(t *testing.T) {
	mk := func(workers int) *Runner {
		opts := DefaultOptions()
		opts.Workers = workers
		r, err := NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ids := []string{"serve-flash", "serve-steady", "serve-priority", "serve-llm", "serve-disagg", "serve-paged"}
	seqRes, err := mk(1).RunMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := mk(4).RunMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if s, p := seqRes[i].Table(), parRes[i].Table(); s != p {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", id, s, p)
		}
	}
	// Re-running on the same runner (warm cost DB) must also reproduce.
	r := mk(2)
	a, err := r.Run("serve-steady")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("serve-steady")
	if err != nil {
		t.Fatal(err)
	}
	if a.Table() != b.Table() {
		t.Error("serve-steady is not reproducible on a warm runner")
	}
}

// TestServeFlashCrowdRecovery asserts the scenario's headline claim: the
// autoscaled fleet recovers SLO attainment the fixed fleet loses to the
// flash crowd, for the identical arrival trace.
func TestServeFlashCrowdRecovery(t *testing.T) {
	r := testRunner(t)
	res, err := r.ServeFlashCrowd()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("flash-crowd result has %d reports, want autoscale on+off", len(res.Reports))
	}
	on, off := res.Reports[0], res.Reports[1]
	if !on.Autoscale || off.Autoscale {
		t.Fatalf("report order wrong: got autoscale=%v,%v", on.Autoscale, off.Autoscale)
	}
	if on.Tenants[0].Arrivals != off.Tenants[0].Arrivals {
		t.Errorf("arrival traces diverge across the pair: %d vs %d — seed plumbing broken",
			on.Tenants[0].Arrivals, off.Tenants[0].Arrivals)
	}
	gain := on.Tenants[0].SLOAttainment - off.Tenants[0].SLOAttainment
	if gain < 0.1 {
		t.Errorf("autoscaler recovered only %+.3f attainment (on %.3f, off %.3f)",
			gain, on.Tenants[0].SLOAttainment, off.Tenants[0].SLOAttainment)
	}
	if on.Tenants[0].ScaleUps == 0 {
		t.Error("autoscaled run recorded no scale-ups")
	}
}

// TestServePriorityRecovery asserts the scenario's headline claim: on
// the identical trace, priority-aware preemptive temporal sharing
// recovers the Interactive tenant's SLO attainment that FIFO sharing
// loses to head-of-line blocking behind ~25 ms batch invocations,
// while the Batch tenant's goodput degrades only by a bounded amount.
func TestServePriorityRecovery(t *testing.T) {
	r := testRunner(t)
	res, err := r.ServePriority()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("serve-priority result has %d reports, want preempt on+off", len(res.Reports))
	}
	on, off := res.Reports[0], res.Reports[1]
	if !on.Preempt || off.Preempt {
		t.Fatalf("report order wrong: got preempt=%v,%v", on.Preempt, off.Preempt)
	}
	for i := range on.Tenants {
		if on.Tenants[i].Arrivals != off.Tenants[i].Arrivals {
			t.Errorf("tenant %s: arrival traces diverge across the pair (%d vs %d) — seed plumbing broken",
				on.Tenants[i].Name, on.Tenants[i].Arrivals, off.Tenants[i].Arrivals)
		}
	}
	inter, batch := on.Tenants[0], on.Tenants[1]
	gain := inter.SLOAttainment - off.Tenants[0].SLOAttainment
	if gain < 0.2 {
		t.Errorf("preemption recovered only %+.3f interactive attainment (on %.3f, off %.3f)",
			gain, inter.SLOAttainment, off.Tenants[0].SLOAttainment)
	}
	// Bounded batch-goodput cost: the Batch tenant may pay for the
	// interactive rescue, but not more than 30% of its baseline goodput.
	if floor := 0.7 * off.Tenants[1].GoodputRPS; batch.GoodputRPS < floor {
		t.Errorf("batch goodput %.1f fell below the bounded-degradation floor %.1f (baseline %.1f)",
			batch.GoodputRPS, floor, off.Tenants[1].GoodputRPS)
	}
	if on.Preemptions == 0 || on.Resumes != on.Preemptions {
		t.Errorf("preemptive run recorded %d preempts / %d resumes", on.Preemptions, on.Resumes)
	}
	if off.Preemptions != 0 {
		t.Errorf("FIFO baseline recorded %d preemptions", off.Preemptions)
	}
	if len(on.Priorities) != 2 || on.Priorities[0].Priority != "interactive" {
		t.Fatalf("per-priority report malformed: %+v", on.Priorities)
	}
	if on.Priorities[1].StolenMs <= 0 {
		t.Error("batch class reports no stolen cycles despite preemptions")
	}
}

// TestServeLLMContinuousWins asserts the serve-llm scenario's headline
// claim: on the identical request trace, continuous batching beats the
// static baseline on goodput AND p99 per-token latency, and the
// KV-cache admission rule visibly gates batch growth.
func TestServeLLMContinuousWins(t *testing.T) {
	r := testRunner(t)
	res, err := r.ServeLLM()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 2 {
		t.Fatalf("serve-llm result has %d reports, want continuous+static", len(res.Reports))
	}
	cont, stat := res.Reports[0].Tenants[0], res.Reports[1].Tenants[0]
	if cont.LLM == nil || stat.LLM == nil {
		t.Fatal("LLM report section missing")
	}
	if cont.LLM.Batcher != "continuous" || stat.LLM.Batcher != "static" {
		t.Fatalf("report order wrong: batchers %q, %q", cont.LLM.Batcher, stat.LLM.Batcher)
	}
	if cont.Arrivals != stat.Arrivals || cont.LLM.TokensOut != stat.LLM.TokensOut {
		t.Errorf("traces diverge across the pair: %d/%d arrivals, %d/%d tokens — seed plumbing broken",
			cont.Arrivals, stat.Arrivals, cont.LLM.TokensOut, stat.LLM.TokensOut)
	}
	if cont.GoodputRPS <= stat.GoodputRPS {
		t.Errorf("continuous goodput %.2f did not beat static %.2f", cont.GoodputRPS, stat.GoodputRPS)
	}
	if cont.LLM.TPOTP99Ms >= stat.LLM.TPOTP99Ms {
		t.Errorf("continuous p99 TPOT %.2fms did not beat static %.2fms",
			cont.LLM.TPOTP99Ms, stat.LLM.TPOTP99Ms)
	}
	if cont.LLM.TTFTP50Ms >= stat.LLM.TTFTP50Ms {
		t.Errorf("continuous median TTFT %.2fms did not beat static %.2fms",
			cont.LLM.TTFTP50Ms, stat.LLM.TTFTP50Ms)
	}
	if cont.LLM.KVOccPeak == 0 || cont.LLM.KVStalls == 0 {
		t.Errorf("KV pressure invisible (peak %.2f, stalls %d) — the admission rule never acted",
			cont.LLM.KVOccPeak, cont.LLM.KVStalls)
	}
	if !strings.Contains(res.Table(), "continuous") || !strings.Contains(res.Table(), "static") {
		t.Error("table does not render both batchers")
	}
}

// TestServeDisaggCrossover asserts the serve-disagg scenario's headline
// claim: on the identical trace at a matched chip count, disaggregation
// beats colocated continuous batching on decode TPOT p99 (no prefill
// ever lands on a decode slot), its end-to-end advantage shrinks as the
// modeled link bandwidth drops (migration is priced into TTFT and the
// interconnect saturates), and the slowest link in the sweep crosses
// below the colocated baseline.
func TestServeDisaggCrossover(t *testing.T) {
	r := testRunner(t)
	res, err := r.ServeDisagg()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 5 {
		t.Fatalf("serve-disagg result has %d reports, want colocated + 4 bandwidth points", len(res.Reports))
	}
	colo := res.Reports[0].Tenants[0]
	if colo.LLM == nil || colo.LLM.Batcher != "continuous" {
		t.Fatalf("report order wrong: first report is %+v, want the colocated baseline", colo.LLM)
	}
	sweep := res.Reports[1:]
	for i, rep := range sweep {
		tr := rep.Tenants[0]
		if tr.LLM == nil || tr.LLM.Batcher != "disaggregated" {
			t.Fatalf("sweep point %d is not disaggregated", i)
		}
		// Identical trace everywhere: arrivals and token totals match the
		// baseline, and migration traffic is a pure function of the trace.
		if tr.Arrivals != colo.Arrivals || tr.LLM.TokensOut != colo.LLM.TokensOut {
			t.Errorf("sweep point %d diverges from the baseline trace: %d/%d arrivals, %d/%d tokens",
				i, tr.Arrivals, colo.Arrivals, tr.LLM.TokensOut, colo.LLM.TokensOut)
		}
		if tr.LLM.Migrations == 0 || tr.LLM.MigrationMB != sweep[0].Tenants[0].LLM.MigrationMB {
			t.Errorf("sweep point %d migration traffic %d/%.1fMB is not trace-determined",
				i, tr.LLM.Migrations, tr.LLM.MigrationMB)
		}
		if rep.LinkGBps >= res.Reports[i].LinkGBps && i > 0 {
			t.Errorf("sweep point %d bandwidth %.4f not decreasing", i, rep.LinkGBps)
		}
	}
	best, worst := sweep[0].Tenants[0], sweep[len(sweep)-1].Tenants[0]
	// (1) TPOT isolation at ample bandwidth.
	if best.LLM.TPOTP99Ms >= colo.LLM.TPOTP99Ms {
		t.Errorf("disaggregated TPOT p99 %.2f ms did not beat colocated %.2f ms",
			best.LLM.TPOTP99Ms, colo.LLM.TPOTP99Ms)
	}
	// (2) End-to-end advantage at ample bandwidth...
	bestGain := best.SLOAttainment - colo.SLOAttainment
	if bestGain <= 0 {
		t.Errorf("disaggregation at full bandwidth gained %+.3f attainment over colocated (%.3f vs %.3f)",
			bestGain, best.SLOAttainment, colo.SLOAttainment)
	}
	// (3) ...shrinking as the link slows, to a visible crossover.
	worstGain := worst.SLOAttainment - colo.SLOAttainment
	if worstGain >= bestGain {
		t.Errorf("advantage did not shrink with bandwidth: %+.3f at the fastest link, %+.3f at the slowest",
			bestGain, worstGain)
	}
	if worstGain >= 0 {
		t.Errorf("no crossover: disaggregation still ahead by %+.3f attainment at the slowest link", worstGain)
	}
	// (4) The interconnect's share of TTFT grows monotonically as it
	// slows (1% slop for quantization).
	for i := 1; i < len(sweep); i++ {
		prev, cur := sweep[i-1].Tenants[0].LLM, sweep[i].Tenants[0].LLM
		if cur.TTFTP99Ms < prev.TTFTP99Ms*0.99 {
			t.Errorf("TTFT p99 fell from %.2f to %.2f ms as bandwidth dropped (sweep points %d→%d)",
				prev.TTFTP99Ms, cur.TTFTP99Ms, i-1, i)
		}
	}
	// (5) Link pressure is visible in the fleet accounting.
	if first, last := sweep[0], sweep[len(sweep)-1]; last.LinkUtil <= first.LinkUtil {
		t.Errorf("link utilization %.3f at the slowest link not above %.3f at the fastest",
			last.LinkUtil, first.LinkUtil)
	}
	for _, want := range []string{"disagg tenant", "interconnect:", "colocated"} {
		if !strings.Contains(res.Table(), want) {
			t.Errorf("serve-disagg table missing %q", want)
		}
	}
}

// TestServePagedBeatsReservation asserts the serve-paged scenario's
// headline claim: on the identical multi-turn session trace, BOTH paged
// legs (evict-recompute and evict-swap) admit strictly more concurrent
// sequences and deliver strictly higher goodput than full reservation,
// the prefix cache visibly serves session re-prefills, and each
// eviction policy pays its own distinct price (replayed tokens vs
// swapped megabytes).
func TestServePagedBeatsReservation(t *testing.T) {
	r := testRunner(t)
	res, err := r.ServePaged()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("serve-paged result has %d reports, want reserve+recompute+swap", len(res.Reports))
	}
	resv, rec, swp := res.Reports[0].Tenants[0], res.Reports[1].Tenants[0], res.Reports[2].Tenants[0]
	if resv.LLM.KVPolicy != "reserve" || rec.LLM.KVPolicy != "paged" || swp.LLM.KVPolicy != "paged" {
		t.Fatalf("report order wrong: policies %q, %q, %q", resv.LLM.KVPolicy, rec.LLM.KVPolicy, swp.LLM.KVPolicy)
	}
	for i, pg := range res.Reports[1:] {
		tr := pg.Tenants[0]
		if tr.Arrivals != resv.Arrivals || tr.LLM.TokensOut != resv.LLM.TokensOut {
			t.Errorf("leg %d: trace diverges from reserve (%d/%d arrivals, %d/%d tokens) — seed plumbing broken",
				i, tr.Arrivals, resv.Arrivals, tr.LLM.TokensOut, resv.LLM.TokensOut)
		}
		if tr.LLM.PeakSeqs <= resv.LLM.PeakSeqs {
			t.Errorf("leg %d: peak seqs %d not above reserve's %d", i, tr.LLM.PeakSeqs, resv.LLM.PeakSeqs)
		}
		if tr.GoodputRPS <= resv.GoodputRPS {
			t.Errorf("leg %d: goodput %.2f not above reserve's %.2f", i, tr.GoodputRPS, resv.GoodputRPS)
		}
		if tr.LLM.PrefixHits == 0 || tr.LLM.PrefixHitTokens == 0 {
			t.Errorf("leg %d: prefix cache never served a session re-prefill (%d hits, %d tokens)",
				i, tr.LLM.PrefixHits, tr.LLM.PrefixHitTokens)
		}
		if tr.LLM.PrefixHitRate <= 0 || tr.LLM.PrefixHitRate > 1 {
			t.Errorf("leg %d: prefix hit rate %.3f not in (0, 1]", i, tr.LLM.PrefixHitRate)
		}
	}
	if rec.LLM.EvictRecompute == 0 || rec.LLM.RecomputeTokens == 0 || rec.LLM.EvictSwap != 0 {
		t.Errorf("recompute leg evictions malformed: %d recompute (%d tokens), %d swap",
			rec.LLM.EvictRecompute, rec.LLM.RecomputeTokens, rec.LLM.EvictSwap)
	}
	if swp.LLM.EvictSwap == 0 || swp.LLM.SwapOutMB == 0 || swp.LLM.EvictRecompute != 0 {
		t.Errorf("swap leg evictions malformed: %d swap (%.1f MB out), %d recompute",
			swp.LLM.EvictSwap, swp.LLM.SwapOutMB, swp.LLM.EvictRecompute)
	}
	if swp.LLM.SwapOutMB != swp.LLM.SwapInMB {
		t.Errorf("swap traffic asymmetric: %.2f MB out, %.2f MB in — a sequence never returned",
			swp.LLM.SwapOutMB, swp.LLM.SwapInMB)
	}
	if resv.LLM.Evictions != 0 || resv.LLM.PrefixLookups != 0 {
		t.Errorf("reserve leg reports paged machinery: %d evictions, %d lookups",
			resv.LLM.Evictions, resv.LLM.PrefixLookups)
	}
	for _, want := range []string{"kv tenant", "paged KV:", "recompute", "swap"} {
		if !strings.Contains(res.Table(), want) {
			t.Errorf("serve-paged table missing %q", want)
		}
	}
}

// TestServeSteadyHealthy pins the steady scenario's healthy shape: every
// tenant holds a high SLO attainment and the fleet stays busy below its
// allocation.
func TestServeSteadyHealthy(t *testing.T) {
	r := testRunner(t)
	res, err := r.ServeSteady()
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Reports[0]
	for _, tr := range rep.Tenants {
		if tr.SLOAttainment < 0.95 {
			t.Errorf("tenant %s attainment %.3f < 0.95 in the steady scenario", tr.Name, tr.SLOAttainment)
		}
		if tr.Completed == 0 {
			t.Errorf("tenant %s completed nothing", tr.Name)
		}
	}
	if rep.FleetEUUtil <= 0 || rep.FleetEUUtil > rep.AllocatedEUFrac+1e-9 {
		t.Errorf("fleet accounting implausible: busy %.3f, allocated %.3f",
			rep.FleetEUUtil, rep.AllocatedEUFrac)
	}
	if !strings.Contains(res.Table(), "steady") {
		t.Error("table does not name its scenario")
	}
}
