package experiments

import (
	"fmt"
	"strings"

	"neu10/internal/compiler"
	"neu10/internal/isa"
	"neu10/internal/model"
	"neu10/internal/sched"
)

// Fig. 2/3 — the number of MEs and VEs demanded by each workload over
// time. This is a compile-time property: for every operator, the number
// of ME µTOps the compiler generated and whether the vector engines are
// needed, laid out on the operator timeline.

// DemandPoint is one operator's demand on the timeline.
type DemandPoint struct {
	TimeUs float64 // operator start, microseconds
	MEs    int
	VEs    int
}

// Fig2Result holds per-model demand timelines.
type Fig2Result struct {
	Batch  int
	Series map[string][]DemandPoint
}

func (r *Fig2Result) Name() string { return "fig2" }

func (r *Fig2Result) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 2 — ME/VE demand over time (batch %d)\n", r.Batch)
	for _, m := range sortedKeys(r.Series) {
		pts := r.Series[m]
		tab := &table{header: []string{"t (µs)", "MEs", "VEs"}}
		step := len(pts)/12 + 1
		for i := 0; i < len(pts); i += step {
			tab.add(f2(pts[i].TimeUs), fmt.Sprint(pts[i].MEs), fmt.Sprint(pts[i].VEs))
		}
		fmt.Fprintf(&sb, "\n%s (%d operators, total %.1f µs):\n%s",
			m, len(pts), pts[len(pts)-1].TimeUs, tab.String())
	}
	return sb.String()
}

// Fig2Demand computes demand timelines for the six models of Fig. 2.
func (r *Runner) Fig2Demand() (*Fig2Result, error) {
	return r.demandTimelines([]string{"BERT", "TFMR", "DLRM", "NCF", "RsNt", "MRCNN"}, 8)
}

func (r *Runner) demandTimelines(models []string, batch int) (*Fig2Result, error) {
	out := &Fig2Result{Batch: batch, Series: map[string][]DemandPoint{}}
	cm := compiler.NewCostModel(r.opts.Core)
	series, err := parMapPairs(r.workers(), models, func(_ int, name string) ([]DemandPoint, error) {
		g, err := model.Build(name, batch)
		if err != nil {
			return nil, err
		}
		cg, err := r.comp.Graph(name, batch, compiler.ISANeu)
		if err != nil {
			return nil, err
		}
		var pts []DemandPoint
		tUs := 0.0
		for i := range cg.Ops {
			op := &cg.Ops[i]
			mes, ves := 0, 0
			for _, grp := range op.Groups {
				nME := 0
				hasVE := false
				for _, u := range grp.UTops {
					if u.Kind == isa.MEUTop {
						nME++
						if u.VECycles > 0 {
							hasVE = true
						}
					} else {
						hasVE = true
					}
				}
				if nME > mes {
					mes = nME
				}
				if hasVE {
					ves = r.opts.Core.VEs
				}
			}
			pts = append(pts, DemandPoint{TimeUs: tUs, MEs: mes, VEs: ves})
			// Advance by the operator's best-case duration on the full core.
			c := cm.Cost(&g.Ops[i])
			dur := float64(c.MECycles) / float64(r.opts.Core.MEs)
			if v := float64(c.VECycles) / float64(r.opts.Core.VEs); v > dur {
				dur = v
			}
			if h := float64(cm.HBMCycles(c.HBMBytes)); h > dur {
				dur = h
			}
			tUs += dur / r.opts.Core.FrequencyHz * 1e6
		}
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range models {
		out.Series[name] = series[i]
	}
	return out, nil
}

// Fig. 4 — ME:VE intensity ratio per workload and batch size.

// Fig4Result maps model → batch → ratio.
type Fig4Result struct {
	Batches []int
	Ratios  map[string]map[int]float64
}

func (r *Fig4Result) Name() string { return "fig4" }

func (r *Fig4Result) Table() string {
	tab := &table{header: []string{"model"}}
	for _, b := range r.Batches {
		tab.header = append(tab.header, fmt.Sprintf("b=%d", b))
	}
	for _, m := range sortedKeys(r.Ratios) {
		row := []string{m}
		for _, b := range r.Batches {
			if v, ok := r.Ratios[m][b]; ok {
				row = append(row, fmt.Sprintf("%.4f", v))
			} else {
				row = append(row, "OOM") // paper omits configs that exceed memory
			}
		}
		tab.add(row...)
	}
	return "Fig. 4 — ME/VE intensity ratio (execution-time ratio)\n" + tab.String()
}

// Fig4Intensity computes the intensity grid for the 11 Table I models.
func (r *Runner) Fig4Intensity() (*Fig4Result, error) {
	res := &Fig4Result{
		Batches: []int{1, 8, 32, 64, 128, 256, 512, 1024},
		Ratios:  map[string]map[int]float64{},
	}
	cm := compiler.NewCostModel(r.opts.Core)
	for _, name := range model.Names() {
		if name == "LLaMA" {
			continue // Fig. 4 covers the 11 Table I inference models
		}
		res.Ratios[name] = map[int]float64{}
		for _, b := range res.Batches {
			g, err := model.Build(name, b)
			if err != nil {
				return nil, err
			}
			// The paper omits workloads whose footprint exceeds HBM at
			// large batch; reproduce that by skipping them.
			if g.HBMFootprint > r.opts.Core.HBMBytes {
				continue
			}
			res.Ratios[name][b] = cm.IntensityRatio(g)
		}
	}
	return res, nil
}

// Fig. 5 — ME and VE utilization of a single inference request on a full
// core, plus Fig. 7's HBM bandwidth, both from solo simulator runs.

// SoloStat summarizes one workload's solo run.
type SoloStat struct {
	Model     string
	Batch     int
	MEUtil    float64
	VEUtil    float64
	AvgBWGBs  float64
	PeakBWGBs float64
	LatencyMs float64
}

// Fig5Result holds solo utilization stats.
type Fig5Result struct{ Stats []SoloStat }

func (r *Fig5Result) Name() string { return "fig5" }

func (r *Fig5Result) Table() string {
	tab := &table{header: []string{"model", "batch", "ME util", "VE util", "latency(ms)"}}
	for _, s := range r.Stats {
		tab.add(s.Model, fmt.Sprint(s.Batch), f3(s.MEUtil), f3(s.VEUtil), f2(s.LatencyMs))
	}
	return "Fig. 5 — solo ME/VE utilization per inference request\n" + tab.String()
}

func (r *Runner) soloRun(name string, batch int) (SoloStat, error) {
	cg, err := r.comp.Graph(name, batch, compiler.ISANeu)
	if err != nil {
		return SoloStat{}, err
	}
	res, err := sched.Run(sched.Config{
		Core: r.opts.Core, Policy: sched.NeuNH, Requests: 3,
		SampleEvery: r.opts.SampleEvery,
	}, []sched.TenantSpec{{Name: name, Graph: cg, MEs: r.opts.Core.MEs, VEs: r.opts.Core.VEs}})
	if err != nil {
		return SoloStat{}, err
	}
	bytesPerCyc := res.AvgBandwidth
	peak := res.HBMTimeline.MaxValue()
	toGBs := r.opts.Core.FrequencyHz / 1e9
	return SoloStat{
		Model: name, Batch: batch,
		MEUtil: res.MEUtil, VEUtil: res.VEUtil,
		AvgBWGBs:  bytesPerCyc * toGBs,
		PeakBWGBs: peak * toGBs,
		LatencyMs: res.Tenants[0].MeanLatency / r.opts.Core.FrequencyHz * 1e3,
	}, nil
}

// Fig5Utilization runs the six Fig. 5 models solo, one worker-pool job
// per model.
func (r *Runner) Fig5Utilization() (*Fig5Result, error) {
	models := []string{"BERT", "TFMR", "DLRM", "NCF", "RsNt", "MRCNN"}
	stats, err := parMapPairs(r.workers(), models, func(_ int, name string) (SoloStat, error) {
		return r.soloRun(name, 8)
	})
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Stats: stats}, nil
}

// Fig7Result holds HBM bandwidth stats for BERT/DLRM at two batch sizes.
type Fig7Result struct{ Stats []SoloStat }

func (r *Fig7Result) Name() string { return "fig7" }

func (r *Fig7Result) Table() string {
	tab := &table{header: []string{"model", "batch", "avg BW (GB/s)", "peak BW (GB/s)"}}
	for _, s := range r.Stats {
		tab.add(s.Model, fmt.Sprint(s.Batch), f2(s.AvgBWGBs), f2(s.PeakBWGBs))
	}
	return "Fig. 7 — HBM bandwidth utilization (paper: avg 176-498 GB/s, peak near limit)\n" + tab.String()
}

// Fig7HBM measures solo HBM bandwidth for BERT and DLRM at batch 8/32.
func (r *Runner) Fig7HBM() (*Fig7Result, error) {
	type gridCell struct {
		name  string
		batch int
	}
	cells := []gridCell{{"BERT", 8}, {"BERT", 32}, {"DLRM", 8}, {"DLRM", 32}}
	stats, err := parMapPairs(r.workers(), cells, func(_ int, c gridCell) (SoloStat, error) {
		return r.soloRun(c.name, c.batch)
	})
	if err != nil {
		return nil, err
	}
	return &Fig7Result{Stats: stats}, nil
}
