package experiments

import (
	"fmt"

	"neu10/internal/arch"
	"neu10/internal/sched"
	"neu10/internal/workload"
)

// Fig. 25 — throughput improvement of Neu10 over V10 while scaling the
// physical core from 2ME-2VE to 8ME-8VE (evenly partitioned between the
// two vNPUs). The paper's claim: more engines → more dynamic-scheduling
// headroom → a larger Neu10 advantage.

// Fig25Result holds the scaling sweep. For each pair and hardware
// configuration it reports the aggregate normalized throughput of both
// Neu10 and V10, normalized to V10 on the 2ME-2VE core — the paper's
// exact presentation ("throughput improvement of Neu10 with varying
// numbers of MEs and VEs over V10 with 2 MEs and 2 VEs").
type Fig25Result struct {
	Configs [][2]int
	// Points[pair][config] = [Neu10, V10] normalized throughput.
	Points map[string]map[[2]int][2]float64
}

func (r *Fig25Result) Name() string { return "fig25" }

func (r *Fig25Result) Table() string {
	tab := &table{header: []string{"pair"}}
	for _, c := range r.Configs {
		tab.header = append(tab.header, fmt.Sprintf("%dME-%dVE N10/V10", c[0], c[1]))
	}
	for _, p := range sortedKeys(r.Points) {
		row := []string{p}
		for _, c := range r.Configs {
			v := r.Points[p][c]
			row = append(row, fmt.Sprintf("%.2f/%.2f", v[0], v[1]))
		}
		tab.add(row...)
	}
	return "Fig. 25 — throughput scaling with MEs/VEs, normalized to V10 on 2ME-2VE\n" + tab.String()
}

// pairGain computes the Neu10:V10 ratio of aggregate normalized
// throughput for a pair on the given core. Each workload's throughput is
// normalized to its own V10 value then averaged (the paper normalizes
// per workload).
func (r *Runner) pairGain(p workload.Pair, core arch.CoreConfig) (float64, error) {
	v10, err := r.runPair(p, sched.V10, core, false)
	if err != nil {
		return 0, err
	}
	n10, err := r.runPair(p, sched.Neu10, core, false)
	if err != nil {
		return 0, err
	}
	var sum float64
	for w := 0; w < 2; w++ {
		base := v10.Tenants[w].Throughput
		if base <= 0 {
			return 0, fmt.Errorf("experiments: zero V10 throughput for %s", v10.Tenants[w].Name)
		}
		sum += n10.Tenants[w].Throughput / base
	}
	return sum / 2, nil
}

// pairThroughputs returns the per-workload throughputs of a pair under a
// policy on the given core.
func (r *Runner) pairThroughputs(p workload.Pair, pol sched.Mode, core arch.CoreConfig) ([2]float64, error) {
	res, err := r.runPair(p, pol, core, false)
	if err != nil {
		return [2]float64{}, err
	}
	return [2]float64{res.Tenants[0].Throughput, res.Tenants[1].Throughput}, nil
}

// Fig25Scaling sweeps the five hardware configurations over all pairs,
// one worker-pool job per pair (each job runs its baseline plus the
// ten per-config simulations).
func (r *Runner) Fig25Scaling() (*Fig25Result, error) {
	configs := [][2]int{{2, 2}, {4, 2}, {4, 4}, {8, 4}, {8, 8}}
	pairs := workload.Pairs()
	points, err := parMapPairs(r.workers(), pairs, func(_ int, p workload.Pair) (map[[2]int][2]float64, error) {
		pts := map[[2]int][2]float64{}
		base, err := r.pairThroughputs(p, sched.V10, r.opts.Core.WithEUs(2, 2))
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", p.Name(), err)
		}
		for _, c := range configs {
			core := r.opts.Core.WithEUs(c[0], c[1])
			n10, err := r.pairThroughputs(p, sched.Neu10, core)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", p.Name(), c, err)
			}
			v10, err := r.pairThroughputs(p, sched.V10, core)
			if err != nil {
				return nil, fmt.Errorf("%s %v: %w", p.Name(), c, err)
			}
			// Aggregate normalized throughput per policy: mean over the
			// two workloads of tput/baseline-V10-2ME2VE-tput.
			norm := func(t [2]float64) float64 {
				return (t[0]/base[0] + t[1]/base[1]) / 2
			}
			pts[c] = [2]float64{norm(n10), norm(v10)}
		}
		return pts, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig25Result{Configs: configs, Points: map[string]map[[2]int][2]float64{}}
	for i, p := range pairs {
		out.Points[p.Name()] = points[i]
	}
	return out, nil
}

// Fig. 26 — Neu10 throughput gain over V10 at 900 GB/s, 1.2 TB/s,
// 2 TB/s and 3 TB/s HBM bandwidth, including the memory-intensive pairs
// (DLRM+NCF, NCF+TFMR) and the LLaMA collocations.

// Fig26Result holds the bandwidth sweep: pair → bandwidth → gain.
type Fig26Result struct {
	Bandwidths []float64 // bytes/s
	Points     map[string]map[float64]float64
}

func (r *Fig26Result) Name() string { return "fig26" }

func (r *Fig26Result) Table() string {
	tab := &table{header: []string{"pair"}}
	for _, bw := range r.Bandwidths {
		tab.header = append(tab.header, fmt.Sprintf("%.0fGB/s", bw/1e9))
	}
	for _, p := range sortedKeys(r.Points) {
		row := []string{p}
		for _, bw := range r.Bandwidths {
			row = append(row, f2(r.Points[p][bw]))
		}
		tab.add(row...)
	}
	return "Fig. 26 — Neu10 throughput gain over V10 vs HBM bandwidth\n" + tab.String()
}

// Fig26Bandwidth sweeps bandwidth over the standard and memory pairs,
// fanning the (pair, bandwidth) grid cells across the worker pool.
func (r *Runner) Fig26Bandwidth() (*Fig26Result, error) {
	out := &Fig26Result{
		Bandwidths: []float64{900e9, 1200e9, 2000e9, 3000e9},
		Points:     map[string]map[float64]float64{},
	}
	pairs := append(workload.MemoryPairs()[:2], workload.Pairs()...)
	type gridCell struct {
		p  workload.Pair
		bw float64
	}
	var cells []gridCell
	for _, p := range pairs {
		for _, bw := range out.Bandwidths {
			cells = append(cells, gridCell{p, bw})
		}
	}
	gains, err := parMapPairs(r.workers(), cells, func(_ int, c gridCell) (float64, error) {
		gain, err := r.pairGain(c.p, r.opts.Core.WithHBMBandwidth(c.bw))
		if err != nil {
			return 0, fmt.Errorf("%s @%.0fGB/s: %w", c.p.Name(), c.bw/1e9, err)
		}
		return gain, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if out.Points[c.p.Name()] == nil {
			out.Points[c.p.Name()] = map[float64]float64{}
		}
		out.Points[c.p.Name()][c.bw] = gains[i]
	}
	return out, nil
}

// Fig. 27 — the LLaMA case study: collocating a memory-bandwidth-bound
// LLM with compute-bound models; per-workload throughput under V10 and
// Neu10 plus core utilization.

// LLMPoint is one collocation's outcome.
type LLMPoint struct {
	Pair      string
	V10Tput   [2]float64
	Neu10Tput [2]float64
	V10MEUtil float64
	N10MEUtil float64
	V10VEUtil float64
	N10VEUtil float64
}

// Fig27Result holds the LLM collocation study.
type Fig27Result struct{ Points []LLMPoint }

func (r *Fig27Result) Name() string { return "fig27" }

func (r *Fig27Result) Table() string {
	tab := &table{header: []string{"pair",
		"W1 V10→Neu10 (rps)", "W2 V10→Neu10 (rps)", "W2 gain",
		"ME util V10→Neu10", "VE util V10→Neu10"}}
	for _, p := range r.Points {
		gain := 0.0
		if p.V10Tput[1] > 0 {
			gain = p.Neu10Tput[1] / p.V10Tput[1]
		}
		tab.add(p.Pair,
			fmt.Sprintf("%.2f→%.2f", p.V10Tput[0], p.Neu10Tput[0]),
			fmt.Sprintf("%.2f→%.2f", p.V10Tput[1], p.Neu10Tput[1]),
			f2(gain),
			fmt.Sprintf("%.3f→%.3f", p.V10MEUtil, p.N10MEUtil),
			fmt.Sprintf("%.3f→%.3f", p.V10VEUtil, p.N10VEUtil))
	}
	return "Fig. 27 — LLM (LLaMA2-13B) collocation: V10 vs Neu10\n" + tab.String()
}

// Fig27LLM runs the three LLaMA collocations under V10 and Neu10, one
// worker-pool job per collocation.
func (r *Runner) Fig27LLM() (*Fig27Result, error) {
	points, err := parMapPairs(r.workers(), workload.MemoryPairs()[2:], func(_ int, p workload.Pair) (LLMPoint, error) {
		v10, err := r.runPair(p, sched.V10, r.opts.Core, false)
		if err != nil {
			return LLMPoint{}, err
		}
		n10, err := r.runPair(p, sched.Neu10, r.opts.Core, false)
		if err != nil {
			return LLMPoint{}, err
		}
		return LLMPoint{
			Pair:      p.Name(),
			V10Tput:   [2]float64{v10.Tenants[0].Throughput, v10.Tenants[1].Throughput},
			Neu10Tput: [2]float64{n10.Tenants[0].Throughput, n10.Tenants[1].Throughput},
			V10MEUtil: v10.MEUtil, N10MEUtil: n10.MEUtil,
			V10VEUtil: v10.VEUtil, N10VEUtil: n10.VEUtil,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig27Result{Points: points}, nil
}
