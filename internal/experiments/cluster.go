package experiments

import (
	"fmt"

	"neu10/internal/cluster"
	"neu10/internal/core"
)

// ClusterResult compares fleet placement policies under tenant churn —
// the §III-C mapper at cluster scale (extension study).
type ClusterResult struct {
	Stats map[core.PlacementPolicy]*cluster.Stats
}

func (r *ClusterResult) Name() string { return "cluster" }

func (r *ClusterResult) Table() string {
	tab := &table{header: []string{"policy", "arrived", "accepted", "acceptance", "mean EU util", "stranded EUs"}}
	for _, pol := range []core.PlacementPolicy{core.GreedyBalance, core.FirstFit, core.WorstFit} {
		st := r.Stats[pol]
		tab.add(pol.String(), fmt.Sprint(st.Arrived), fmt.Sprint(st.Accepted),
			fmt.Sprintf("%.1f%%", st.AcceptanceRate()*100),
			fmt.Sprintf("%.1f%%", st.MeanEUUtil*100), f2(st.MeanStrandedEUs))
	}
	return "Cluster study — vNPU placement policies under tenant churn\n" +
		"(16 cores, allocator-sized requests, identical arrival trace)\n" + tab.String()
}

// ClusterStudy runs the churn comparison at moderate pressure.
func (r *Runner) ClusterStudy() (*ClusterResult, error) {
	cfg := cluster.DefaultConfig()
	cfg.Core = r.opts.Core
	cfg.ArrivalRate = 8
	cfg.Duration = 300
	stats, err := cluster.Compare(cfg)
	if err != nil {
		return nil, err
	}
	return &ClusterResult{Stats: stats}, nil
}
