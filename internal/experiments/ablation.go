package experiments

import (
	"fmt"

	"neu10/internal/sched"
	"neu10/internal/workload"
)

// Extension studies beyond the paper's figures: ablations of Neu10's two
// harvesting mechanisms, sensitivity to the ME preemption cost, and an
// open-loop SLO study. DESIGN.md lists these as the design-choice
// ablations; they reuse the paper's pair methodology.

// AblationHarvestResult compares full Neu10 against each harvesting
// mechanism disabled, per pair, as aggregate throughput normalized to
// Neu10-NH (1.0 = no harvesting benefit).
type AblationHarvestResult struct {
	// Gains[pair] = [full, no-ME-harvest, no-VE-harvest] aggregate
	// throughput relative to Neu10-NH.
	Gains map[string][3]float64
}

func (r *AblationHarvestResult) Name() string { return "ablation-harvest" }

func (r *AblationHarvestResult) Table() string {
	tab := &table{header: []string{"pair", "Neu10", "-ME harvest", "-VE harvest"}}
	for _, p := range sortedKeys(r.Gains) {
		g := r.Gains[p]
		tab.add(p, f3(g[0]), f3(g[1]), f3(g[2]))
	}
	return "Ablation — harvesting mechanisms (aggregate throughput / Neu10-NH)\n" + tab.String()
}

// AblationHarvest runs the harvest-mechanism ablation over all pairs,
// one worker-pool job per pair (four simulations each).
func (r *Runner) AblationHarvest() (*AblationHarvestResult, error) {
	pairs := workload.Pairs()
	gains, err := parMapPairs(r.workers(), pairs, func(_ int, p workload.Pair) ([3]float64, error) {
		specs, err := r.comp.Tenants(p, sched.Neu10, r.opts.Core.MEs/2, r.opts.Core.VEs/2)
		if err != nil {
			return [3]float64{}, err
		}
		base, err := r.runPair(p, sched.NeuNH, r.opts.Core, false)
		if err != nil {
			return [3]float64{}, err
		}
		agg := func(res *sched.Result) float64 {
			var s float64
			for w := 0; w < 2; w++ {
				s += res.Tenants[w].Throughput / base.Tenants[w].Throughput
			}
			return s / 2
		}
		var gains [3]float64
		for i, cfg := range []sched.Config{
			{Core: r.opts.Core, Policy: sched.Neu10, Requests: r.opts.Requests},
			{Core: r.opts.Core, Policy: sched.Neu10, Requests: r.opts.Requests, DisableMEHarvest: true},
			{Core: r.opts.Core, Policy: sched.Neu10, Requests: r.opts.Requests, DisableVEHarvest: true},
		} {
			res, err := sched.Run(cfg, specs)
			if err != nil {
				return [3]float64{}, fmt.Errorf("%s ablation %d: %w", p.Name(), i, err)
			}
			gains[i] = agg(res)
		}
		return gains, nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationHarvestResult{Gains: map[string][3]float64{}}
	for i, p := range pairs {
		out.Gains[p.Name()] = gains[i]
	}
	return out, nil
}

// AblationPreemptResult sweeps the ME reclaim (context switch) cost.
type AblationPreemptResult struct {
	Costs []int
	// PerCost[cost] = [aggregate throughput vs NH, worst victim blocked fraction].
	PerCost map[int][2]float64
}

func (r *AblationPreemptResult) Name() string { return "ablation-preempt" }

func (r *AblationPreemptResult) Table() string {
	tab := &table{header: []string{"reclaim cycles", "throughput vs NH", "worst blocked %"}}
	for _, c := range r.Costs {
		v := r.PerCost[c]
		tab.add(fmt.Sprint(c), f3(v[0]), fmt.Sprintf("%.2f%%", v[1]*100))
	}
	return "Ablation — ME preemption cost sweep (paper's §III-G picks 256;\nmean over the 9 pairs)\n" + tab.String()
}

// AblationPreempt sweeps the reclaim penalty from free to 64x the
// paper's value. The (cost, pair) grid cells fan across the worker
// pool; per-cost aggregation walks the results in grid order so the
// floating-point accumulation matches the sequential sweep exactly.
func (r *Runner) AblationPreempt() (*AblationPreemptResult, error) {
	out := &AblationPreemptResult{
		Costs:   []int{0, 256, 1024, 4096, 16384},
		PerCost: map[int][2]float64{},
	}
	pairs := workload.Pairs()
	// The NeuNH baseline does not depend on the preemption cost: run it
	// once per pair instead of once per grid cell.
	baselines, err := parMapPairs(r.workers(), pairs, func(_ int, p workload.Pair) (*sched.Result, error) {
		return r.runPair(p, sched.NeuNH, r.opts.Core, false)
	})
	if err != nil {
		return nil, err
	}
	type gridCell struct {
		cost int
		pi   int
	}
	type cellResult struct {
		gain    [2]float64
		blocked [2]float64
	}
	var cells []gridCell
	for _, cost := range out.Costs {
		for pi := range pairs {
			cells = append(cells, gridCell{cost, pi})
		}
	}
	results, err := parMapPairs(r.workers(), cells, func(_ int, c gridCell) (cellResult, error) {
		core := r.opts.Core
		core.MEPreemptCycles = c.cost
		comp, err := r.compiledFor(core)
		if err != nil {
			return cellResult{}, err
		}
		specs, err := comp.Tenants(pairs[c.pi], sched.Neu10, core.MEs/2, core.VEs/2)
		if err != nil {
			return cellResult{}, err
		}
		n10, err := sched.Run(sched.Config{Core: core, Policy: sched.Neu10, Requests: r.opts.Requests}, specs)
		if err != nil {
			return cellResult{}, err
		}
		nh := baselines[c.pi]
		var cr cellResult
		for w := 0; w < 2; w++ {
			cr.gain[w] = n10.Tenants[w].Throughput / nh.Tenants[w].Throughput
			cr.blocked[w] = n10.Tenants[w].HarvestBlocked / n10.DurationCycles
		}
		return cr, nil
	})
	if err != nil {
		return nil, err
	}
	for ci, cost := range out.Costs {
		var gainSum, worstBlocked float64
		n := 0
		for pi := range pairs {
			cr := results[ci*len(pairs)+pi]
			for w := 0; w < 2; w++ {
				gainSum += cr.gain[w]
				n++
				if cr.blocked[w] > worstBlocked {
					worstBlocked = cr.blocked[w]
				}
			}
		}
		out.PerCost[cost] = [2]float64{gainSum / float64(n), worstBlocked}
	}
	return out, nil
}

// SLOResult is the open-loop latency-vs-load study: p95 latency of a
// latency-sensitive tenant collocated with a batch tenant, across offered
// loads, under V10/NeuNH/Neu10.
type SLOResult struct {
	Loads []float64
	// P95Ms[policy][load] in milliseconds.
	P95Ms map[string]map[float64]float64
}

func (r *SLOResult) Name() string { return "slo" }

func (r *SLOResult) Table() string {
	tab := &table{header: []string{"offered load"}}
	pols := []string{"V10", "Neu10-NH", "Neu10"}
	tab.header = append(tab.header, pols...)
	for _, l := range r.Loads {
		row := []string{fmt.Sprintf("%.0f%%", l*100)}
		for _, p := range pols {
			row = append(row, fmt.Sprintf("%.3f ms", r.P95Ms[p][l]))
		}
		tab.add(row...)
	}
	return "SLO study — open-loop p95 latency of MNIST collocated with RetinaNet\n" +
		"(Poisson arrivals at a fraction of MNIST's half-core capacity)\n" + tab.String()
}

// SLOStudy sweeps offered load for the latency-sensitive MNIST tenant
// sharing a core with closed-loop RetinaNet.
func (r *Runner) SLOStudy() (*SLOResult, error) {
	core := r.opts.Core
	// MNIST half-core service rate: measure once solo.
	soloCG, err := r.comp.Graph("MNIST", workload.BatchFor("MNIST"), sched.NeuNH.ISAFor())
	if err != nil {
		return nil, err
	}
	solo, err := sched.Run(sched.Config{Core: core, Policy: sched.NeuNH, Requests: 20},
		[]sched.TenantSpec{{Name: "MNIST", Graph: soloCG, MEs: core.MEs / 2, VEs: core.VEs / 2}})
	if err != nil {
		return nil, err
	}
	capacity := solo.Tenants[0].Throughput

	out := &SLOResult{
		Loads: []float64{0.2, 0.4, 0.6, 0.8},
		P95Ms: map[string]map[float64]float64{"V10": {}, "Neu10-NH": {}, "Neu10": {}},
	}
	pols := []sched.Mode{sched.V10, sched.NeuNH, sched.Neu10}
	type gridCell struct {
		pol  sched.Mode
		load float64
	}
	var cells []gridCell
	for _, pol := range pols {
		for _, load := range out.Loads {
			cells = append(cells, gridCell{pol, load})
		}
	}
	p95s, err := parMapPairs(r.workers(), cells, func(_ int, c gridCell) (float64, error) {
		mnist, err := r.comp.Graph("MNIST", workload.BatchFor("MNIST"), c.pol.ISAFor())
		if err != nil {
			return 0, err
		}
		rtnt, err := r.comp.Graph("RtNt", workload.BatchFor("RtNt"), c.pol.ISAFor())
		if err != nil {
			return 0, err
		}
		res, err := sched.Run(sched.Config{Core: core, Policy: c.pol, Requests: 50, Seed: 11},
			[]sched.TenantSpec{
				{Name: "MNIST", Graph: mnist, MEs: core.MEs / 2, VEs: core.VEs / 2, ArrivalRate: c.load * capacity},
				{Name: "RtNt", Graph: rtnt, MEs: core.MEs / 2, VEs: core.VEs / 2},
			})
		if err != nil {
			return 0, fmt.Errorf("slo %s@%.1f: %w", c.pol, c.load, err)
		}
		return res.Tenants[0].P95Latency / core.FrequencyHz * 1e3, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		out.P95Ms[c.pol.String()][c.load] = p95s[i]
	}
	return out, nil
}
