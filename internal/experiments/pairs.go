package experiments

import (
	"fmt"
	"sort"
	"strings"

	"neu10/internal/compiler"
	"neu10/internal/sched"
	"neu10/internal/workload"
)

func coreSoloPolicy(kind compiler.ISAKind) sched.Mode {
	if kind == compiler.ISAVLIW {
		return sched.PMT // PMT with a single tenant = plain full-core VLIW execution
	}
	return sched.NeuNH
}

func runSolo(r *Runner, cg *compiler.CompiledGraph, policy sched.Mode) (*sched.Result, error) {
	return sched.Run(sched.Config{Core: r.opts.Core, Policy: policy, Requests: 3},
		[]sched.TenantSpec{{Name: cg.Model, Graph: cg, MEs: r.opts.Core.MEs, VEs: r.opts.Core.VEs}})
}

// PairMetrics is one (pair, policy) outcome.
type PairMetrics struct {
	Pair   workload.Pair
	Policy sched.Mode
	// Per workload (index 0 = W1, 1 = W2).
	P95        [2]float64
	Mean       [2]float64
	Throughput [2]float64
	Blocked    [2]float64 // harvest-blocked fraction of runtime (Table III)
	MEUtil     float64
	VEUtil     float64
}

// PairStudyResult backs Figs. 19-22 and Table III: the nine pairs under
// all four policies.
type PairStudyResult struct {
	Metrics []PairMetrics
	id      string
}

// view returns a shallow copy presenting as the given figure id.
func (r *PairStudyResult) view(id string) *PairStudyResult {
	c := *r
	c.id = id
	return &c
}

func (r *PairStudyResult) Name() string {
	if r.id == "" {
		return "fig19"
	}
	return r.id
}

// byPair groups metrics by pair name preserving paper order.
func (r *PairStudyResult) byPair() ([]string, map[string]map[sched.Mode]PairMetrics) {
	var order []string
	m := map[string]map[sched.Mode]PairMetrics{}
	for _, pm := range r.Metrics {
		key := pm.Pair.Name()
		if _, ok := m[key]; !ok {
			order = append(order, key)
			m[key] = map[sched.Mode]PairMetrics{}
		}
		m[key][pm.Policy] = pm
	}
	return order, m
}

// Table renders the figure selected by the id: values are normalized to
// PMT exactly as in the paper (latency figures: PMT/x would invert; the
// paper normalizes latencies to PMT so >1 means worse — here we report
// x/PMT for latencies and x/PMT for throughput).
func (r *PairStudyResult) Table() string {
	order, by := r.byPair()
	var sb strings.Builder
	var title string
	metric := func(pm, base PairMetrics, w int) float64 { return 0 }
	switch r.Name() {
	case "fig19":
		title = "Fig. 19 — 95th-percentile latency normalized to PMT (lower is better)"
		metric = func(pm, base PairMetrics, w int) float64 { return pm.P95[w] / base.P95[w] }
	case "fig20":
		title = "Fig. 20 — average latency normalized to PMT (lower is better)"
		metric = func(pm, base PairMetrics, w int) float64 { return pm.Mean[w] / base.Mean[w] }
	case "fig21":
		title = "Fig. 21 — throughput normalized to PMT (higher is better)"
		metric = func(pm, base PairMetrics, w int) float64 {
			return pm.Throughput[w] / base.Throughput[w]
		}
	case "fig22":
		title = "Fig. 22 — total ME / VE utilization of the NPU core"
	case "table3":
		title = "Table III — harvesting overhead (blocked time / end-to-end time)"
	}
	sb.WriteString(title + "\n")

	switch r.Name() {
	case "fig22":
		tab := &table{header: []string{"pair", "PMT ME", "V10 ME", "NH ME", "Neu10 ME",
			"PMT VE", "V10 VE", "NH VE", "Neu10 VE"}}
		for _, key := range order {
			row := []string{key}
			for _, pol := range Policies() {
				row = append(row, f3(by[key][pol].MEUtil))
			}
			for _, pol := range Policies() {
				row = append(row, f3(by[key][pol].VEUtil))
			}
			tab.add(row...)
		}
		sb.WriteString(tab.String())
	case "table3":
		tab := &table{header: []string{"pair", "W1 overhead", "W2 overhead"}}
		for _, key := range order {
			pm := by[key][sched.Neu10]
			tab.add(key, fmtOverhead(pm.Blocked[0]), fmtOverhead(pm.Blocked[1]))
		}
		sb.WriteString(tab.String())
	default:
		tab := &table{header: []string{"pair",
			"W1-PMT", "W1-V10", "W1-NH", "W1-Neu10",
			"W2-PMT", "W2-V10", "W2-NH", "W2-Neu10"}}
		for _, key := range order {
			base := by[key][sched.PMT]
			row := []string{key}
			for w := 0; w < 2; w++ {
				for _, pol := range Policies() {
					row = append(row, f2(metric(by[key][pol], base, w)))
				}
			}
			tab.add(row...)
		}
		sb.WriteString(tab.String())
	}
	return sb.String()
}

func fmtOverhead(v float64) string {
	if v < 0.0001 {
		return "<0.01%"
	}
	return fmt.Sprintf("%.2f%%", v*100)
}

// PairStudy runs the nine pairs under the four policies — 36
// independent scenario simulations fanned across the worker pool and
// collected in (pair, policy) order, so the result is byte-identical to
// the sequential sweep. Results are cached within the runner (and the
// computation single-flighted) so fig19-22/table3 share one sweep.
func (r *Runner) PairStudy() (*PairStudyResult, error) {
	r.pairMu.Lock()
	defer r.pairMu.Unlock()
	if r.pairStudy != nil {
		return r.pairStudy, nil
	}
	type cell struct {
		p   workload.Pair
		pol sched.Mode
	}
	var cells []cell
	for _, p := range workload.Pairs() {
		for _, pol := range Policies() {
			cells = append(cells, cell{p, pol})
		}
	}
	metrics, err := parMapPairs(r.workers(), cells, func(_ int, c cell) (PairMetrics, error) {
		res, err := r.runPair(c.p, c.pol, r.opts.Core, false)
		if err != nil {
			return PairMetrics{}, fmt.Errorf("%s/%s: %w", c.p.Name(), c.pol, err)
		}
		pm := PairMetrics{Pair: c.p, Policy: c.pol, MEUtil: res.MEUtil, VEUtil: res.VEUtil}
		for w := 0; w < 2; w++ {
			pm.P95[w] = res.Tenants[w].P95Latency
			pm.Mean[w] = res.Tenants[w].MeanLatency
			pm.Throughput[w] = res.Tenants[w].Throughput
			if res.DurationCycles > 0 {
				pm.Blocked[w] = res.Tenants[w].HarvestBlocked / res.DurationCycles
			}
		}
		return pm, nil
	})
	if err != nil {
		return nil, err
	}
	out := &PairStudyResult{Metrics: metrics}
	r.pairStudy = out
	return out, nil
}

// Fig. 23 — per-operator speedup of Neu10 over Neu10-NH for each pair,
// rendered as the distribution (deciles) of per-op ratios.

// BreakdownCurve is one pair's speedup distribution for both workloads.
type BreakdownCurve struct {
	Pair     workload.Pair
	Deciles  [2][11]float64 // per workload: min, d10..d90, max of per-op speedup
	MeanGain [2]float64
}

// Fig23Result holds all breakdown curves.
type Fig23Result struct{ Curves []BreakdownCurve }

func (r *Fig23Result) Name() string { return "fig23" }

func (r *Fig23Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig. 23 — per-operator speedup of Neu10 over Neu10-NH (deciles)\n")
	tab := &table{header: []string{"pair", "wl", "min", "p10", "p30", "p50", "p70", "p90", "max", "mean"}}
	for _, c := range r.Curves {
		names := []string{c.Pair.W1, c.Pair.W2}
		for w := 0; w < 2; w++ {
			d := c.Deciles[w]
			tab.add(c.Pair.Name(), names[w], f2(d[0]), f2(d[1]), f2(d[3]), f2(d[5]),
				f2(d[7]), f2(d[9]), f2(d[10]), f2(c.MeanGain[w]))
		}
	}
	sb.WriteString(tab.String())
	return sb.String()
}

// Fig23Breakdown traces per-op durations under NH and Neu10 and reports
// the speedup distribution. Each pair's NH/Neu10 run couple is one
// worker-pool job.
func (r *Runner) Fig23Breakdown() (*Fig23Result, error) {
	curves, err := parMapPairs(r.workers(), workload.Pairs(), func(_ int, p workload.Pair) (BreakdownCurve, error) {
		nh, err := r.runPair(p, sched.NeuNH, r.opts.Core, false)
		if err != nil {
			return BreakdownCurve{}, err
		}
		n10, err := r.runPair(p, sched.Neu10, r.opts.Core, false)
		if err != nil {
			return BreakdownCurve{}, err
		}
		c := BreakdownCurve{Pair: p}
		for w := 0; w < 2; w++ {
			var ratios []float64
			var sum float64
			for i, dNH := range nh.Tenants[w].OpDurations {
				d10 := n10.Tenants[w].OpDurations[i]
				if dNH > 0 && d10 > 0 {
					ratios = append(ratios, dNH/d10)
					sum += dNH / d10
				}
			}
			if len(ratios) == 0 {
				continue
			}
			sort.Float64s(ratios)
			for q := 0; q <= 10; q++ {
				idx := q * (len(ratios) - 1) / 10
				c.Deciles[w][q] = ratios[idx]
			}
			c.MeanGain[w] = sum / float64(len(ratios))
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig23Result{Curves: curves}, nil
}

// Fig. 24 — assigned MEs/VEs over time for three pairs under Neu10.

// TimelineStat summarizes one tenant's assignment series.
type TimelineStat struct {
	Pair    string
	Tenant  string
	MeanMEs float64
	MaxMEs  float64
	MeanVEs float64
	MaxVEs  float64
	Points  int
}

// Fig24Result holds assignment timeline summaries.
type Fig24Result struct{ Stats []TimelineStat }

func (r *Fig24Result) Name() string { return "fig24" }

func (r *Fig24Result) Table() string {
	tab := &table{header: []string{"pair", "tenant", "mean MEs", "max MEs", "mean VEs", "max VEs", "samples"}}
	for _, s := range r.Stats {
		tab.add(s.Pair, s.Tenant, f2(s.MeanMEs), f2(s.MaxMEs), f2(s.MeanVEs), f2(s.MaxVEs), fmt.Sprint(s.Points))
	}
	return "Fig. 24 — MEs/VEs assigned over time under Neu10 (allocation = 2 each;\n" +
		"max > 2 shows harvesting in action)\n" + tab.String()
}

// Fig24Timeline samples assignment timelines for the paper's three pairs.
func (r *Runner) Fig24Timeline() (*Fig24Result, error) {
	pairs := []workload.Pair{
		{W1: "DLRM", W2: "RtNt"}, {W1: "ENet", W2: "SMask"}, {W1: "RNRS", W2: "RtNt"},
	}
	perPair, err := parMapPairs(r.workers(), pairs, func(_ int, p workload.Pair) ([]TimelineStat, error) {
		res, err := r.runPair(p, sched.Neu10, r.opts.Core, true)
		if err != nil {
			return nil, err
		}
		var stats []TimelineStat
		for _, tr := range res.Tenants {
			stats = append(stats, TimelineStat{
				Pair: p.Name(), Tenant: tr.Name,
				MeanMEs: tr.METimeline.Mean(), MaxMEs: tr.METimeline.MaxValue(),
				MeanVEs: tr.VETimeline.Mean(), MaxVEs: tr.VETimeline.MaxValue(),
				Points: tr.METimeline.Len(),
			})
		}
		return stats, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig24Result{}
	for _, stats := range perPair {
		out.Stats = append(out.Stats, stats...)
	}
	return out, nil
}
