package experiments

import (
	"testing"

	"neu10/internal/sched"
	"neu10/internal/workload"
)

func TestAblationHarvestBothMechanismsContribute(t *testing.T) {
	r := testRunner(t)
	res, err := r.AblationHarvest()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gains) != len(workload.Pairs()) {
		t.Fatalf("%d pairs, want %d", len(res.Gains), len(workload.Pairs()))
	}
	var full, noME, noVE float64
	for _, g := range res.Gains {
		full += g[0]
		noME += g[1]
		noVE += g[2]
	}
	// Full Neu10 must beat both single-mechanism variants on average,
	// and every variant must still be ≥ NH (harvesting never hurts the
	// aggregate).
	if full <= noME || full <= noVE {
		t.Errorf("full harvesting (%.3f) not above ablated variants (%.3f / %.3f)",
			full/9, noME/9, noVE/9)
	}
	for pair, g := range res.Gains {
		for i, v := range g {
			if v < 0.93 {
				t.Errorf("%s variant %d: aggregate %.3f fell below NH", pair, i, v)
			}
		}
	}
}

func TestAblationPreemptCostDegradesGracefully(t *testing.T) {
	r := testRunner(t)
	res, err := r.AblationPreempt()
	if err != nil {
		t.Fatal(err)
	}
	// Throughput gain must be non-increasing in reclaim cost (within
	// noise), and the paper's 256-cycle point must cost almost nothing
	// relative to a free reclaim.
	free := res.PerCost[0][0]
	paper := res.PerCost[256][0]
	worst := res.PerCost[16384][0]
	if paper < free*0.98 {
		t.Errorf("256-cycle reclaim costs %.1f%% of the free-reclaim gain; should be negligible",
			(1-paper/free)*100)
	}
	if worst >= paper {
		t.Errorf("64x reclaim cost (%.3f) did not reduce the harvesting gain (%.3f)", worst, paper)
	}
	// Blocked time must grow with the penalty.
	if res.PerCost[16384][1] <= res.PerCost[256][1] {
		t.Error("blocked fraction did not grow with reclaim cost")
	}
}

func TestSLOStudyIsolationUnderLoad(t *testing.T) {
	r := testRunner(t)
	res, err := r.SLOStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, load := range res.Loads {
		n10 := res.P95Ms["Neu10"][load]
		nh := res.P95Ms["Neu10-NH"][load]
		v10 := res.P95Ms["V10"][load]
		// Neu10's open-loop tail stays within ~25% of static isolation.
		if n10 > nh*1.25 {
			t.Errorf("load %.0f%%: Neu10 p95 %.3f ms vs NH %.3f ms", load*100, n10, nh)
		}
		// V10's head-of-line blocking must be visible by an order of
		// magnitude at every load.
		if v10 < 10*n10 {
			t.Errorf("load %.0f%%: V10 p95 %.3f ms not an order above Neu10 %.3f ms", load*100, v10, n10)
		}
	}
	// Queueing delay grows with load under every policy.
	if res.P95Ms["Neu10"][0.8] <= res.P95Ms["Neu10"][0.2] {
		t.Error("Neu10 p95 did not grow with offered load")
	}
}

func TestExtensionIDsRegistered(t *testing.T) {
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, want := range []string{"ablation-harvest", "ablation-preempt", "slo"} {
		if !have[want] {
			t.Errorf("extension experiment %s not registered", want)
		}
	}
	_ = sched.Neu10
}
