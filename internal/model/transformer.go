package model

import (
	"strconv"

	"neu10/internal/compiler"
)

// BERT builds BERT-large inference (24 layers, hidden 1024, FFN 4096,
// 16 heads, sequence 128). Table I: 1.27 GB at batch 8; Fig. 4 places it
// firmly ME-intensive at batch ≥ 8.
func BERT(batch int) *compiler.Graph {
	const (
		layers = 24
		hidden = 1024
		ffn    = 4096
		heads  = 16
		seq    = 128
	)
	b := newBuilder("BERT", batch)
	tokens := batch * seq
	headDim := hidden / heads

	b.gather("token-embed", int64(tokens), hidden, 1.2)
	b.vec("embed-ln", compiler.LayerNorm, int64(tokens)*hidden, 4)
	for l := 0; l < layers; l++ {
		b.matmul(layerName("qkv-proj", l), tokens, hidden, 3*hidden, false)
		// Attention per head: scores (S×d · d×S) and context (S×S · S×d),
		// batched over batch×heads.
		b.actMatmul(layerName("attn-scores", l), batch*heads*seq, headDim, seq, false)
		b.vec(layerName("attn-softmax", l), compiler.Softmax, int64(batch)*int64(heads)*int64(seq)*int64(seq), 4)
		b.actMatmul(layerName("attn-context", l), batch*heads*seq, seq, headDim, false)
		b.matmul(layerName("attn-out", l), tokens, hidden, hidden, false)
		b.vec(layerName("attn-ln", l), compiler.LayerNorm, int64(tokens)*hidden, 4)
		b.matmul(layerName("ffn-up", l), tokens, hidden, ffn, true) // fused GELU
		b.matmul(layerName("ffn-down", l), tokens, ffn, hidden, false)
		b.vec(layerName("ffn-ln", l), compiler.LayerNorm, int64(tokens)*hidden, 4)
	}
	b.matmul("pooler", batch, hidden, hidden, true)

	weights := int64(layers)*(12*int64(hidden)*int64(hidden)+int64(9)*int64(hidden)) + 31000*int64(hidden)
	acts := int64(tokens) * int64(hidden) * 8
	return b.finish(weights*f32 + acts*f32/2)
}

// Transformer builds a big encoder-decoder translation transformer
// (the MLPerf-style Transformer; Table I: 1.54 GB at batch 8).
func Transformer(batch int) *compiler.Graph {
	const (
		encLayers = 14
		decLayers = 14
		hidden    = 1024
		ffn       = 4096
		heads     = 16
		srcSeq    = 256
		tgtSeq    = 256
	)
	b := newBuilder("TFMR", batch)
	headDim := hidden / heads

	encTok := batch * srcSeq
	b.gather("src-embed", int64(encTok), hidden, 1.2)
	for l := 0; l < encLayers; l++ {
		b.matmul(layerName("enc-qkv", l), encTok, hidden, 3*hidden, false)
		b.actMatmul(layerName("enc-scores", l), batch*heads*srcSeq, headDim, srcSeq, false)
		b.vec(layerName("enc-softmax", l), compiler.Softmax, int64(batch)*int64(heads)*int64(srcSeq)*int64(srcSeq), 4)
		b.actMatmul(layerName("enc-context", l), batch*heads*srcSeq, srcSeq, headDim, false)
		b.matmul(layerName("enc-out", l), encTok, hidden, hidden, false)
		b.vec(layerName("enc-ln1", l), compiler.LayerNorm, int64(encTok)*hidden, 4)
		b.matmul(layerName("enc-ffn-up", l), encTok, hidden, ffn, true)
		b.matmul(layerName("enc-ffn-down", l), encTok, ffn, hidden, false)
		b.vec(layerName("enc-ln2", l), compiler.LayerNorm, int64(encTok)*hidden, 4)
	}
	decTok := batch * tgtSeq
	for l := 0; l < decLayers; l++ {
		b.matmul(layerName("dec-qkv", l), decTok, hidden, 3*hidden, false)
		b.actMatmul(layerName("dec-self-scores", l), batch*heads*tgtSeq, headDim, tgtSeq, false)
		b.vec(layerName("dec-softmax", l), compiler.Softmax, int64(batch)*int64(heads)*int64(tgtSeq)*int64(tgtSeq), 4)
		b.actMatmul(layerName("dec-self-ctx", l), batch*heads*tgtSeq, tgtSeq, headDim, false)
		b.matmul(layerName("dec-cross", l), decTok, hidden, hidden, false)
		b.vec(layerName("dec-ln1", l), compiler.LayerNorm, int64(decTok)*hidden, 4)
		b.matmul(layerName("dec-ffn-up", l), decTok, hidden, ffn, true)
		b.matmul(layerName("dec-ffn-down", l), decTok, ffn, hidden, false)
		b.vec(layerName("dec-ln2", l), compiler.LayerNorm, int64(decTok)*hidden, 4)
	}
	b.matmul("lm-head", decTok, hidden, 32000, false)

	weights := int64(encLayers+decLayers)*13*int64(hidden)*int64(hidden) + 2*32000*int64(hidden)
	acts := int64(encTok+decTok) * int64(hidden) * 6
	return b.finish(weights*f32 + acts*f32/2)
}

// LLaMA builds the §V-F case study: LLaMA2-13B, batch 8, input sequence
// 512, modeled as a short batched decode run — the memory-bandwidth-bound
// regime the paper collocates with compute-bound models in Fig. 27.
func LLaMA(batch int) *compiler.Graph {
	const (
		layers  = 40
		hidden  = 5120
		ffnDim  = 13824
		heads   = 40
		ctxLen  = 512
		decodes = 8 // decode steps simulated per request
	)
	b := newBuilder("LLaMA", batch)
	headDim := hidden / heads

	for step := 0; step < decodes; step++ {
		for l := 0; l < layers; l++ {
			// Decode: one token per sample; GEMV-shaped matmuls stream
			// the full weight matrices for tiny M — the HBM-bound shape.
			b.matmul(layerName("qkv", l), batch, hidden, 3*hidden, false)
			b.actMatmul(layerName("scores", l), batch*heads, headDim, ctxLen+step, false)
			b.vec(layerName("softmax", l), compiler.Softmax, int64(batch)*heads*int64(ctxLen+step), 4)
			b.actMatmul(layerName("ctx", l), batch*heads, ctxLen+step, headDim, false)
			b.matmul(layerName("o-proj", l), batch, hidden, hidden, false)
			b.vec(layerName("rmsnorm1", l), compiler.LayerNorm, int64(batch)*hidden, 3)
			b.matmul(layerName("gate-up", l), batch, hidden, 2*ffnDim, true) // fused SiLU
			b.matmul(layerName("ffn-down", l), batch, ffnDim, hidden, false)
			b.vec(layerName("rmsnorm2", l), compiler.LayerNorm, int64(batch)*hidden, 3)
		}
		b.matmul("lm-head", batch, hidden, 32000, false)
	}

	params := int64(layers)*(4*int64(hidden)*int64(hidden)+3*int64(hidden)*int64(ffnDim)) + 2*32000*int64(hidden)
	kvCache := int64(2) * layers * int64(ctxLen+decodes) * int64(hidden) * int64(2) // bf16 KV
	return b.finish(params*2 /* bf16 */ + int64(8)*kvCache)
}

func layerName(base string, l int) string {
	return base + "." + strconv.Itoa(l)
}
