// Package model builds operator graphs for the DNN inference workloads
// the paper evaluates (Table I): BERT, Transformer, DLRM, NCF, Mask-RCNN,
// RetinaNet, ShapeMask, MNIST, ResNet, ResNet-RS, EfficientNet, plus the
// LLaMA2-13B case study of §V-F.
//
// The paper collects operator traces from real TPUv4 hardware; this
// package is the substitution documented in DESIGN.md: graphs are
// constructed from the published model architectures, and their cost
// decomposition reproduces the paper's characterization — the HBM
// footprints of Table I, the ME:VE intensity spread of Fig. 4
// (0.001…100×), and the relative request latencies of Fig. 2/5.
package model

import (
	"fmt"
	"sort"

	"neu10/internal/compiler"
)

// Factory builds a workload graph for a batch size.
type Factory func(batch int) *compiler.Graph

// registry maps the paper's model abbreviations to builders.
var registry = map[string]Factory{
	"BERT":  BERT,
	"TFMR":  Transformer,
	"DLRM":  DLRM,
	"NCF":   NCF,
	"MRCNN": MaskRCNN,
	"RtNt":  RetinaNet,
	"SMask": ShapeMask,
	"MNIST": MNIST,
	"RsNt":  ResNet,
	"RNRS":  ResNetRS,
	"ENet":  EfficientNet,
	"LLaMA": LLaMA,
}

// Names returns the registered model abbreviations, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs the named model's graph at the given batch size.
func Build(name string, batch int) (*compiler.Graph, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown model %q (have %v)", name, Names())
	}
	if batch < 1 {
		return nil, fmt.Errorf("model: batch size %d", batch)
	}
	g := f(batch)
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("model: %s: %w", name, err)
	}
	return g, nil
}

// ---- graph-building helpers ----

const f32 = 4 // bytes per element

// gb and mb improve the readability of footprint constants.
const (
	kb = int64(1) << 10
	mb = int64(1) << 20
	gb = int64(1) << 30
)

type builder struct {
	g *compiler.Graph
	// sramResident is the per-tensor activation working set the compiler
	// keeps in on-chip SRAM (Table II: 128 MB total, shared between
	// weights-in-flight, double buffers and activations). Only the
	// excess spills to HBM.
	sramResident int64
}

func newBuilder(name string, batch int) *builder {
	return &builder{
		g:            &compiler.Graph{Model: name, BatchSize: batch},
		sramResident: 32 * mb,
	}
}

// spill returns the HBM traffic for one tensor: the part of it that does
// not fit the SRAM-resident working set.
func (b *builder) spill(bytes int64) int64 {
	if bytes > b.sramResident {
		return bytes - b.sramResident
	}
	return 0
}

// matmul appends a dense matrix multiply (weights streamed from HBM,
// activations spilled only beyond the SRAM-resident working set).
func (b *builder) matmul(name string, m, k, n int, fuse bool) {
	in := int64(m) * int64(k) * f32
	out := int64(m) * int64(n) * f32
	b.g.Ops = append(b.g.Ops, compiler.Op{
		Name: name, Kind: compiler.MatMul,
		M: m, K: k, N: n, FusedVE: fuse,
		WeightBytes: int64(k) * int64(n) * f32,
		IOBytes:     b.spill(in) + b.spill(out),
	})
}

// actMatmul appends an activation×activation matmul (attention scores /
// context): no weights are streamed.
func (b *builder) actMatmul(name string, m, k, n int, fuse bool) {
	b.matmul(name, m, k, n, fuse)
	b.g.Ops[len(b.g.Ops)-1].WeightBytes = 0
}

// vec appends a vector operator.
func (b *builder) vec(name string, kind compiler.OpKind, elems int64, passes int) {
	b.g.Ops = append(b.g.Ops, compiler.Op{
		Name: name, Kind: kind, Elems: elems, Passes: passes,
		IOBytes: 2 * b.spill(elems*f32),
	})
}

// gather appends an embedding lookup of rows×dim with random-access
// amplification amp (wasted bandwidth from partial-line reads). The
// gather's VE cost models row-granular streaming: ~8 cycles per row
// regardless of row width, expressed through Passes.
func (b *builder) gather(name string, rows int64, dim int, amp float64) {
	elems := rows * int64(dim)
	// 8 VE cycles per row → passes such that elems*passes/1024 = rows*8.
	passes := int(float64(rows*8*1024) / float64(elems))
	if passes < 1 {
		passes = 1
	}
	b.g.Ops = append(b.g.Ops, compiler.Op{
		Name: name, Kind: compiler.EmbeddingLookup,
		Elems: elems, Passes: passes,
		WeightBytes: int64(float64(elems*f32) * amp),
	})
}

// conv appends a convolution rewritten through im2col: for an input of
// hw×hw×cin at batch n with a kxk kernel, stride s, cout filters.
func (b *builder) conv(name string, batch, hw, cin, k, s, cout int, fuse bool) {
	out := hw / s
	b.matmul(name, batch*out*out, k*k*cin, cout, fuse)
}

// depthwise appends a depthwise convolution: per-channel filtering with
// no cross-channel reduction — systolic arrays run it at terrible
// efficiency, so production compilers map it to the VEs. k²-tap filter →
// k² multiply-accumulate passes over the activation.
func (b *builder) depthwise(name string, batch, hw, ch, k, s int) {
	out := hw / s
	elems := int64(batch) * int64(out) * int64(out) * int64(ch)
	b.vec(name, compiler.VectorEW, elems, k*k)
}

// sramPinThreshold: models whose entire parameter set fits comfortably
// in on-chip SRAM (Table II: 128 MB) keep weights resident and stream
// nothing from HBM per inference. Without this, a tiny model served at
// high request rates would fabricate enormous HBM traffic.
const sramPinThreshold = 48 * mb

func (b *builder) finish(footprint int64) *compiler.Graph {
	b.g.HBMFootprint = footprint
	var weightTotal int64
	for i := range b.g.Ops {
		if b.g.Ops[i].Kind != compiler.EmbeddingLookup {
			weightTotal += b.g.Ops[i].WeightBytes
		}
	}
	if weightTotal <= sramPinThreshold {
		for i := range b.g.Ops {
			if b.g.Ops[i].Kind != compiler.EmbeddingLookup {
				b.g.Ops[i].WeightBytes = 0
			}
		}
	}
	return b.g
}
