package model

import (
	"testing"

	"neu10/internal/arch"
	"neu10/internal/compiler"
)

func cm() *compiler.CostModel { return compiler.NewCostModel(arch.TPUv4Like()) }

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		for _, batch := range []int{1, 8, 32} {
			g, err := Build(name, batch)
			if err != nil {
				t.Fatalf("%s batch %d: %v", name, batch, err)
			}
			if g.Model != name {
				t.Fatalf("graph model %q for %q", g.Model, name)
			}
			if g.BatchSize != batch {
				t.Fatalf("%s: batch %d recorded as %d", name, batch, g.BatchSize)
			}
		}
	}
}

func TestUnknownModelRejected(t *testing.T) {
	if _, err := Build("GPT7", 8); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := Build("BERT", 0); err == nil {
		t.Fatal("batch 0 accepted")
	}
}

func TestRegistryHasAllPaperModels(t *testing.T) {
	want := []string{"BERT", "TFMR", "DLRM", "NCF", "MRCNN", "RtNt", "SMask", "MNIST", "RsNt", "RNRS", "ENet", "LLaMA"}
	have := map[string]bool{}
	for _, n := range Names() {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("paper model %s missing from registry", w)
		}
	}
	if len(Names()) != len(want) {
		t.Errorf("registry has %d models, want %d", len(Names()), len(want))
	}
}

// TestTableIFootprints checks the Table I column: footprints at batch 8
// must land near the published values (within 2× — the substitution note
// in DESIGN.md) and preserve the published ordering.
func TestTableIFootprints(t *testing.T) {
	published := map[string]float64{ // bytes
		"BERT":  1.27e9 * 1.074, // paper lists GB (decimal ambiguity absorbed by the 2x band)
		"TFMR":  1.54e9 * 1.074,
		"DLRM":  22.38e9 * 1.074,
		"NCF":   11.10e9 * 1.074,
		"MRCNN": 3.21e9 * 1.074,
		"RtNt":  860.51e6 * 1.049,
		"SMask": 6.04e9 * 1.074,
		"MNIST": 10.59e6 * 1.049,
		"RsNt":  216.02e6 * 1.049,
		"RNRS":  458.17e6 * 1.049,
		"ENet":  99.06e6 * 1.049,
	}
	for name, want := range published {
		g, err := Build(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(g.HBMFootprint)
		if got < want/2 || got > want*2 {
			t.Errorf("%s footprint %.2f MB, paper %.2f MB (outside 2x band)",
				name, got/1e6, want/1e6)
		}
	}
}

// TestFig4IntensitySpread checks the Fig. 4 characterization: workloads
// span the VE-intensive to ME-intensive spectrum.
func TestFig4IntensitySpread(t *testing.T) {
	ratios := map[string]float64{}
	for _, name := range Names() {
		g, err := Build(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		ratios[name] = cm().IntensityRatio(g)
	}
	if ratios["DLRM"] > 0.05 {
		t.Errorf("DLRM ratio %.4f; Fig. 4 places it ≤ 0.05", ratios["DLRM"])
	}
	if ratios["NCF"] > 1 {
		t.Errorf("NCF ratio %.3f; should be VE-leaning", ratios["NCF"])
	}
	if ratios["ENet"] < 0.2 || ratios["ENet"] > 3 {
		t.Errorf("ENet ratio %.3f; should be near-balanced", ratios["ENet"])
	}
	for _, me := range []string{"BERT", "RsNt", "RtNt", "TFMR", "SMask"} {
		if ratios[me] < 2 {
			t.Errorf("%s ratio %.3f; Fig. 4 places it ME-intensive", me, ratios[me])
		}
	}
	if ratios["BERT"] <= ratios["DLRM"]*50 {
		t.Errorf("spread too narrow: BERT %.3f vs DLRM %.4f", ratios["BERT"], ratios["DLRM"])
	}
}

// TestFig4BatchScaling: BERT becomes more ME-intensive with batch size
// while DLRM stays VE-intensive regardless (paper §II-B).
func TestFig4BatchScaling(t *testing.T) {
	bertSmall, _ := Build("BERT", 1)
	bertBig, _ := Build("BERT", 32)
	if cm().IntensityRatio(bertBig) < cm().IntensityRatio(bertSmall) {
		t.Error("BERT ME intensity did not grow with batch size")
	}
	dlrmBig, _ := Build("DLRM", 32)
	if cm().IntensityRatio(dlrmBig) > 0.2 {
		t.Errorf("DLRM at batch 32 not VE-intensive: %.3f", cm().IntensityRatio(dlrmBig))
	}
}

// TestProfileExtremes: the allocator inputs (m, v) must reflect the
// workload character the paper's Fig. 5 reports.
func TestProfileExtremes(t *testing.T) {
	bert, _ := Build("BERT", 8)
	p := cm().ProfileGraph(bert)
	if p.M < 0.8 {
		t.Errorf("BERT m=%.3f; should be ME-active most of the time", p.M)
	}
	dlrm, _ := Build("DLRM", 8)
	p = cm().ProfileGraph(dlrm)
	if p.V < 0.7 {
		t.Errorf("DLRM v=%.3f; should be VE-active most of the time", p.V)
	}
	if p.M > 0.3 {
		t.Errorf("DLRM m=%.3f; MEs should be mostly idle", p.M)
	}
}

// TestLLaMAMemoryBound: the §V-F case study premise — LLaMA decode
// saturates HBM bandwidth while underutilizing compute.
func TestLLaMAMemoryBound(t *testing.T) {
	g, err := Build("LLaMA", 8)
	if err != nil {
		t.Fatal(err)
	}
	p := cm().ProfileGraph(g)
	core := arch.TPUv4Like()
	avgBW := float64(p.HBMBytes) / core.CyclesToSeconds(p.TotalCycles)
	if avgBW < 0.8*core.HBMBwBytes {
		t.Errorf("LLaMA average bandwidth %.0f GB/s; should approach the %.0f GB/s limit",
			avgBW/1e9, core.HBMBwBytes/1e9)
	}
	if p.M > 0.5 {
		t.Errorf("LLaMA m=%.3f; decode should leave MEs mostly idle", p.M)
	}
}

// TestRequestLatencyOrdering: relative 1ME/1VE runtimes must track the
// paper's Fig. 2/5 timelines (µs-scale DLRM … hundreds of ms MRCNN).
func TestRequestLatencyOrdering(t *testing.T) {
	core := arch.TPUv4Like()
	ms := func(name string) float64 {
		g, err := Build(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		return core.CyclesToSeconds(cm().ProfileGraph(g).TotalCycles) * 1e3
	}
	dlrm, mnist, bert, mrcnn := ms("DLRM"), ms("MNIST"), ms("BERT"), ms("MRCNN")
	if dlrm > 2 {
		t.Errorf("DLRM request %.3f ms; paper shows sub-millisecond", dlrm)
	}
	if mnist > dlrm {
		t.Errorf("MNIST (%.3f ms) slower than DLRM (%.3f ms)", mnist, dlrm)
	}
	if bert < 2 || bert > 80 {
		t.Errorf("BERT request %.2f ms; paper shows ~10 ms scale", bert)
	}
	if mrcnn < 50 {
		t.Errorf("MRCNN request %.1f ms; paper shows ~200 ms scale", mrcnn)
	}
	if !(dlrm < bert && bert < mrcnn) {
		t.Errorf("latency ordering broken: DLRM %.3f, BERT %.2f, MRCNN %.1f", dlrm, bert, mrcnn)
	}
}

func TestGraphsAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		a, _ := Build(name, 8)
		b, _ := Build(name, 8)
		if len(a.Ops) != len(b.Ops) || a.HBMFootprint != b.HBMFootprint {
			t.Fatalf("%s: non-deterministic graph", name)
		}
		for i := range a.Ops {
			if a.Ops[i] != b.Ops[i] {
				t.Fatalf("%s: op %d differs between builds", name, i)
			}
		}
	}
}

func TestAllModelsCompileBothISAs(t *testing.T) {
	comp, err := compiler.New(arch.TPUv4Like())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		g, err := Build(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []compiler.ISAKind{compiler.ISANeu, compiler.ISAVLIW} {
			cg, err := comp.Compile(g, kind)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
			if err := cg.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", name, kind, err)
			}
		}
	}
}
