package model

import "neu10/internal/compiler"

// ResNet builds ResNet-50 image classification at 224×224 (Table I:
// 216 MB at batch 8). Convolution-dominated: Fig. 4 puts it at the
// ME-intensive end.
func ResNet(batch int) *compiler.Graph {
	b := newBuilder("RsNt", batch)
	resNetBody(b, batch, 1.0)
	b.matmul("fc", batch, 2048, 1000, false)
	weights := int64(25_600_000)
	acts := int64(batch) * 3_000_000
	return b.finish(weights*f32 + acts*f32)
}

// resNetBody emits the conv stages of a ResNet-50-shaped trunk, with
// widthScale scaling channel counts (ResNet-RS uses > 1).
func resNetBody(b *builder, batch int, widthScale float64) {
	ch := func(c int) int { return int(float64(c)*widthScale + 0.5) }

	b.conv("conv1", batch, 224, 3, 7, 2, ch(64), true)
	b.vec("pool1", compiler.Pooling, int64(batch)*56*56*int64(ch(64)), 2)

	type stage struct {
		blocks, hw, cin, cmid, cout, stride int
	}
	stages := []stage{
		{3, 56, ch(64), ch(64), ch(256), 1},
		{4, 56, ch(256), ch(128), ch(512), 2},
		{6, 28, ch(512), ch(256), ch(1024), 2},
		{3, 14, ch(1024), ch(512), ch(2048), 2},
	}
	for si, s := range stages {
		hw := s.hw
		cin := s.cin
		for blk := 0; blk < s.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = s.stride
			}
			pfx := layerName(layerName("res", si+2), blk)
			b.conv(pfx+".a", batch, hw, cin, 1, 1, s.cmid, true)
			b.conv(pfx+".b", batch, hw, s.cmid, 3, stride, s.cmid, true)
			hwOut := hw / stride
			b.conv(pfx+".c", batch, hwOut, s.cmid, 1, 1, s.cout, false)
			if blk == 0 {
				b.conv(pfx+".proj", batch, hw, cin, 1, stride, s.cout, false)
			}
			b.vec(pfx+".add-relu", compiler.VectorEW, int64(batch)*int64(hwOut)*int64(hwOut)*int64(s.cout), 2)
			hw = hwOut
			cin = s.cout
		}
	}
	b.vec("gap", compiler.Reduction, int64(batch)*7*7*int64(ch(2048)), 1)
}

// ResNetRS builds the deeper/wider ResNet-RS variant (Table I: 458 MB).
func ResNetRS(batch int) *compiler.Graph {
	b := newBuilder("RNRS", batch)
	resNetBody(b, batch, 1.4)
	// RS variants add an extra stage of refinement convs.
	b.conv("rs-extra-1", batch, 14, 716, 3, 1, 716, true)
	b.conv("rs-extra-2", batch, 7, 2867, 1, 1, 2867, true)
	b.matmul("fc", batch, 2867, 1000, false)
	weights := int64(55_000_000)
	acts := int64(batch) * 6_000_000
	return b.finish(weights*f32 + acts*f32)
}

// EfficientNet builds an EfficientNet-B4-shaped classifier (Table I:
// 99 MB). Depthwise convolutions run on the VEs, so ME and VE demand is
// close to balanced — which is exactly why the paper's allocator selects
// near-equal ME/VE configs for it (Fig. 12c).
func EfficientNet(batch int) *compiler.Graph {
	b := newBuilder("ENet", batch)

	b.conv("stem", batch, 224, 3, 3, 2, 48, true)
	type block struct {
		repeat, hw, cin, cout, expand, k, stride int
	}
	blocks := []block{
		{2, 112, 48, 24, 1, 3, 1},
		{4, 112, 24, 32, 6, 3, 2},
		{4, 56, 32, 56, 6, 5, 2},
		{6, 28, 56, 112, 6, 3, 2},
		{6, 14, 112, 160, 6, 5, 1},
		{8, 14, 160, 272, 6, 5, 2},
		{2, 7, 272, 448, 6, 3, 1},
	}
	for bi, blk := range blocks {
		hw := blk.hw
		cin := blk.cin
		for r := 0; r < blk.repeat; r++ {
			stride := 1
			if r == 0 {
				stride = blk.stride
			}
			pfx := layerName(layerName("mb", bi), r)
			mid := cin * blk.expand
			if blk.expand != 1 {
				b.conv(pfx+".expand", batch, hw, cin, 1, 1, mid, true)
			}
			b.depthwise(pfx+".dw", batch, hw, mid, blk.k, stride)
			hwOut := hw / stride
			// Squeeze-and-excite: global pool + two tiny matmuls + scale.
			b.vec(pfx+".se-pool", compiler.Reduction, int64(batch)*int64(hwOut)*int64(hwOut)*int64(mid), 1)
			b.matmul(pfx+".se-fc1", batch, mid, mid/24+1, true)
			b.matmul(pfx+".se-fc2", batch, mid/24+1, mid, true)
			b.vec(pfx+".se-scale", compiler.VectorEW, int64(batch)*int64(hwOut)*int64(hwOut)*int64(mid), 1)
			b.conv(pfx+".project", batch, hwOut, mid, 1, 1, blk.cout, false)
			b.vec(pfx+".swish", compiler.VectorEW, int64(batch)*int64(hwOut)*int64(hwOut)*int64(blk.cout), 2)
			hw = hwOut
			cin = blk.cout
		}
	}
	b.conv("head", batch, 7, 448, 1, 1, 1792, true)
	b.matmul("fc", batch, 1792, 1000, false)
	weights := int64(19_000_000)
	acts := int64(batch) * 1_500_000
	return b.finish(weights*f32 + acts*f32)
}

// RetinaNet builds the RetinaNet detector on a ResNet-50 FPN backbone at
// 1024×1024 (Table I: 860 MB). Heavy convolution load → ME-intensive.
func RetinaNet(batch int) *compiler.Graph {
	b := newBuilder("RtNt", batch)
	resNetBody(b, batch, 1.0)
	// FPN lateral + output convs on P3..P7.
	for _, hw := range []int{64, 32, 16, 8, 4} {
		b.conv(layerName("fpn-lat", hw), batch, hw, 256, 1, 1, 256, false)
		b.conv(layerName("fpn-out", hw), batch, hw, 256, 3, 1, 256, true)
	}
	// Class + box heads: 4 convs each on every level.
	for _, hw := range []int{64, 32, 16, 8, 4} {
		for i := 0; i < 4; i++ {
			b.conv(layerName("cls-head", hw*10+i), batch, hw, 256, 3, 1, 256, true)
			b.conv(layerName("box-head", hw*10+i), batch, hw, 256, 3, 1, 256, true)
		}
		b.conv(layerName("cls-out", hw), batch, hw, 256, 3, 1, 9*91, false)
		b.conv(layerName("box-out", hw), batch, hw, 256, 3, 1, 9*4, false)
	}
	// Postprocess: sigmoid + NMS on ~100k anchors.
	anchors := int64(batch) * 100_000
	b.vec("score-sigmoid", compiler.VectorEW, anchors*91/10, 2)
	b.vec("nms", compiler.Reduction, anchors, 6)
	weights := int64(38_000_000)
	acts := int64(batch) * 20_000_000
	return b.finish(weights*f32 + acts*f32)
}

// MaskRCNN builds Mask-RCNN (Table I: 3.21 GB; the paper's Fig. 2 shows
// ~200 ms requests): a big backbone plus per-RoI heads with substantial
// vector work (RoIAlign, NMS, mask postprocessing).
func MaskRCNN(batch int) *compiler.Graph {
	const rois = 512
	b := newBuilder("MRCNN", batch)
	resNetBody(b, batch, 1.0)
	// RPN over FPN levels.
	for _, hw := range []int{256, 128, 64, 32, 16} {
		b.conv(layerName("rpn", hw), batch, hw, 256, 3, 1, 256, true)
		b.conv(layerName("rpn-cls", hw), batch, hw, 256, 1, 1, 3, false)
		b.conv(layerName("rpn-box", hw), batch, hw, 256, 1, 1, 12, false)
	}
	b.vec("rpn-nms", compiler.Reduction, int64(batch)*250_000, 6)
	// RoIAlign: bilinear gather per RoI — vector heavy.
	b.vec("roi-align", compiler.VectorEW, int64(batch)*rois*7*7*256, 8)
	// Box head: two FCs over all RoIs.
	b.matmul("box-fc1", batch*rois, 7*7*256, 1024, true)
	b.matmul("box-fc2", batch*rois, 1024, 1024, true)
	b.matmul("box-cls", batch*rois, 1024, 91, false)
	b.matmul("box-reg", batch*rois, 1024, 364, false)
	b.vec("box-nms", compiler.Reduction, int64(batch)*rois*91, 6)
	// Mask head: 4 convs + deconv over 14×14 RoI features.
	for i := 0; i < 4; i++ {
		b.conv(layerName("mask-conv", i), batch*rois, 14, 256, 3, 1, 256, true)
	}
	b.conv("mask-deconv", batch*rois, 28, 256, 2, 1, 256, true)
	b.conv("mask-out", batch*rois, 28, 256, 1, 1, 91, false)
	b.vec("mask-post", compiler.VectorEW, int64(batch)*rois*28*28*91/10, 4)
	weights := int64(44_000_000)
	acts := int64(batch) * 90_000_000
	return b.finish(weights*f32 + acts*f32)
}

// ShapeMask builds the ShapeMask instance-segmentation model (Table I:
// 6.04 GB): RetinaNet-style detector plus shape-prior mask branch.
func ShapeMask(batch int) *compiler.Graph {
	b := newBuilder("SMask", batch)
	resNetBody(b, batch, 1.2)
	for _, hw := range []int{128, 64, 32, 16, 8} {
		b.conv(layerName("fpn-lat", hw), batch, hw, 307, 1, 1, 256, false)
		b.conv(layerName("fpn-out", hw), batch, hw, 256, 3, 1, 256, true)
		for i := 0; i < 4; i++ {
			b.conv(layerName("det-head", hw*10+i), batch, hw, 256, 3, 1, 256, true)
		}
	}
	// Shape prior estimation + fine mask branch.
	const rois = 256
	b.vec("prior-gather", compiler.VectorEW, int64(batch)*rois*32*32, 6)
	for i := 0; i < 4; i++ {
		b.conv(layerName("coarse-mask", i), batch*rois, 32, 128, 3, 1, 128, true)
	}
	b.conv("fine-mask", batch*rois, 32, 128, 3, 1, 128, true)
	b.vec("mask-post", compiler.VectorEW, int64(batch)*rois*32*32, 4)
	weights := int64(81_000_000)
	acts := int64(batch) * 110_000_000
	return b.finish(weights*f32 + acts*f32)
}

// MNIST builds the small LeNet-style classifier of Table I (10.59 MB) —
// included because tiny workloads stress scheduler overheads (the paper
// pairs MNIST with RetinaNet as a high-contention collocation).
func MNIST(batch int) *compiler.Graph {
	b := newBuilder("MNIST", batch)
	b.conv("conv1", batch, 28, 1, 5, 1, 32, true)
	b.vec("pool1", compiler.Pooling, int64(batch)*14*14*32, 2)
	b.conv("conv2", batch, 14, 32, 5, 1, 64, true)
	b.vec("pool2", compiler.Pooling, int64(batch)*7*7*64, 2)
	b.matmul("fc1", batch, 7*7*64, 1024, true)
	b.matmul("fc2", batch, 1024, 10, false)
	b.vec("softmax", compiler.Softmax, int64(batch)*10, 4)
	weights := int64(3_300_000)
	return b.finish(weights*f32/2 + int64(batch)*100*kb)
}
