package model

import "neu10/internal/compiler"

// DLRM builds the MLPerf DLRM-style recommender: large multi-hot
// embedding lookups (the 22.38 GB footprint of Table I comes almost
// entirely from the tables) feeding small MLPs. The paper's Fig. 4 puts
// DLRM at the far VE-intensive end (ME:VE ratio ~0.001-0.01) and Fig. 7
// shows it drawing ~500 GB/s average bandwidth at batch 8 — both fall
// out of the dominant gather here.
func DLRM(batch int) *compiler.Graph {
	const (
		tables   = 26
		embDim   = 128
		multiHot = 200 // average pooled ids per table lookup
		denseIn  = 13
		botMLP1  = 512
		botMLP2  = 256
		topMLP1  = 512
		topMLP2  = 256
	)
	b := newBuilder("DLRM", batch)

	// Bottom MLP over dense features.
	b.matmul("bot-mlp-1", batch, denseIn, botMLP1, true)
	b.matmul("bot-mlp-2", batch, botMLP1, botMLP2, true)
	b.matmul("bot-mlp-3", batch, botMLP2, embDim, true)

	// Sparse feature lookups: tables × batch × multi-hot pooled rows.
	rows := int64(tables) * int64(batch) * int64(multiHot)
	b.gather("emb-lookup", rows, embDim, 2.0) // 2× random-access amplification
	// Pooling the multi-hot ids into one vector per (sample, table).
	b.vec("emb-pool", compiler.Reduction, rows*int64(embDim), 1)

	// Pairwise feature interactions: (tables+1) choose 2 dot products.
	const feats = tables + 1
	b.vec("interact", compiler.VectorEW, int64(batch)*int64(feats)*int64(feats)/2*int64(embDim), 2)

	// Top MLP.
	interIn := feats*(feats-1)/2 + embDim
	b.matmul("top-mlp-1", batch, interIn, topMLP1, true)
	b.matmul("top-mlp-2", batch, topMLP1, topMLP2, true)
	b.matmul("top-mlp-3", batch, topMLP2, 1, false)
	b.vec("sigmoid", compiler.VectorEW, int64(batch), 2)

	// Footprint: 26 tables × ~1.68M rows × 128 × f32 ≈ 22.4 GB.
	tableBytes := int64(tables) * 1_680_000 * embDim * f32
	return b.finish(tableBytes + 3*mb)
}

// NCF builds neural collaborative filtering: GMF + MLP towers over
// user/item embeddings, scored against a large candidate set per request
// (which is why the paper's Fig. 2 shows millisecond-scale NCF requests
// despite the tiny model). Table I: 11.10 GB, dominated by embeddings.
func NCF(batch int) *compiler.Graph {
	const (
		embDim     = 64
		candidates = 2048 // items scored per request sample
		mlp1       = 256
		mlp2       = 128
		mlp3       = 64
	)
	b := newBuilder("NCF", batch)
	pairs := int64(batch) * candidates

	// User and item embedding lookups for both towers.
	b.gather("user-embed", 2*int64(batch), embDim, 2.0)
	b.gather("item-embed", 2*pairs, embDim, 2.0)
	// GMF tower: elementwise product.
	b.vec("gmf-mul", compiler.VectorEW, pairs*embDim, 1)
	// MLP tower.
	b.matmul("mlp-1", int(pairs), 2*embDim, mlp1, true)
	b.matmul("mlp-2", int(pairs), mlp1, mlp2, true)
	b.matmul("mlp-3", int(pairs), mlp2, mlp3, true)
	// Fusion + prediction.
	b.matmul("predict", int(pairs), embDim+mlp3, 1, false)
	b.vec("sigmoid", compiler.VectorEW, pairs, 2)
	b.vec("topk", compiler.Reduction, pairs, 3)

	// Footprint: user+item embedding tables for both towers ≈ 11.1 GB.
	return b.finish(11*gb + 100*mb)
}
