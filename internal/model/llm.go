package model

import "neu10/internal/compiler"

// Phase-split LLM graphs for autoregressive serving (internal/serve's
// continuous batcher). The registered "LLaMA" model is the §V-F case
// study — a fixed 8-step batched decode run, right for figure sweeps
// but useless for serving, where every iteration's composition changes.
// Serving instead prices the two phases separately:
//
//   - LLMPrefill(batch, prompt): process `prompt` tokens per sequence in
//     one forward pass — the compute-bound phase (big GEMMs, quadratic
//     attention) that also emits each sequence's first token.
//   - LLMDecode(batch, ctx): one decode iteration — a single token per
//     sequence attending over `ctx` cached tokens. GEMV-shaped matmuls
//     stream the full weight matrices for tiny M: the HBM-bound phase
//     whose per-token cost is what continuous batching amortizes.
//
// Both use the LLaMA2-13B dimensions of the registry model, so the
// serving layer, the §V-F collocation figures and the KV accounting
// (LLMWeightBytes / LLMKVBytesPerToken) all describe one model.
const (
	llmLayers = 40
	llmHidden = 5120
	llmFFN    = 13824
	llmHeads  = 40
	llmVocab  = 32000
)

// LLMParams returns the parameter count of the serving LLM.
func LLMParams() int64 {
	return int64(llmLayers)*(4*int64(llmHidden)*int64(llmHidden)+3*int64(llmHidden)*int64(llmFFN)) +
		2*int64(llmVocab)*int64(llmHidden)
}

// LLMWeightBytes returns the resident weight bytes of the serving LLM
// (bf16, matching the registry LLaMA's footprint convention). This is
// what a serving replica subtracts from its §III HBM partition before
// carving the remainder into KV-cache blocks.
func LLMWeightBytes() int64 { return LLMParams() * 2 }

// LLMKVBytesPerToken returns the KV-cache bytes one token of one
// sequence pins: K and V vectors across all layers, bf16.
func LLMKVBytesPerToken() int64 { return 2 * int64(llmLayers) * int64(llmHidden) * 2 }

// LLMKVTransferBytes returns the payload a KV migration of `tokens`
// resident tokens ships over the chip-to-chip interconnect — the full
// per-layer K/V pages a disaggregated decode replica needs before it
// can take the sequence's first decode iteration.
func LLMKVTransferBytes(tokens int) int64 {
	if tokens <= 0 {
		return 0
	}
	return int64(tokens) * LLMKVBytesPerToken()
}

// LLMPrefill builds the prompt-processing phase: `prompt` tokens per
// sequence through every layer, plus the last position's logits (the
// first emitted token). Attention is quadratic in the prompt; the
// weight matrices stream once regardless of batch. It is exactly the
// zero-context chunk case.
func LLMPrefill(batch, prompt int) *compiler.Graph {
	return LLMPrefillChunk(batch, prompt, 0)
}

// LLMPrefillChunk builds one chunked-prefill step: `chunk` new tokens
// per sequence pushed through every layer while attending over `ctx`
// ALREADY-CACHED tokens plus the chunk itself. The GEMMs scale with
// the chunk alone (that is what chunking buys), but attention scales
// with chunk × (ctx + chunk): a late chunk of a long prompt pays for
// the whole context behind it, exactly the work a constant per-chunk
// price would hide. LLMPrefillChunk(b, p, 0) is LLMPrefill(b, p).
func LLMPrefillChunk(batch, chunk, ctx int) *compiler.Graph {
	b := newBuilder("LLaMA-prefill", batch)
	headDim := llmHidden / llmHeads
	tokens := batch * chunk
	span := ctx + chunk

	for l := 0; l < llmLayers; l++ {
		b.matmul(layerName("qkv", l), tokens, llmHidden, 3*llmHidden, false)
		b.actMatmul(layerName("scores", l), batch*llmHeads*chunk, headDim, span, false)
		b.vec(layerName("softmax", l), compiler.Softmax, int64(batch)*int64(llmHeads)*int64(chunk)*int64(span), 4)
		b.actMatmul(layerName("ctx", l), batch*llmHeads*chunk, span, headDim, false)
		b.matmul(layerName("o-proj", l), tokens, llmHidden, llmHidden, false)
		b.vec(layerName("rmsnorm1", l), compiler.LayerNorm, int64(tokens)*llmHidden, 3)
		b.matmul(layerName("gate-up", l), tokens, llmHidden, 2*llmFFN, true) // fused SiLU
		b.matmul(layerName("ffn-down", l), tokens, llmFFN, llmHidden, false)
		b.vec(layerName("rmsnorm2", l), compiler.LayerNorm, int64(tokens)*llmHidden, 3)
	}
	// Only the final position needs logits; intermediate chunks carry
	// the (small) lm-head too, pricing the conservative side.
	b.matmul("lm-head", batch, llmHidden, llmVocab, false)

	kv := int64(batch) * int64(span) * LLMKVBytesPerToken()
	return b.finish(LLMWeightBytes() + kv)
}

// LLMDecode builds one decode iteration: a single new token per
// sequence, attending over `ctx` cached tokens. Identical in structure
// to the registry LLaMA's inner step, but parameterized on context so
// the serving layer can price growing sequences into bucketed costs.
func LLMDecode(batch, ctx int) *compiler.Graph {
	b := newBuilder("LLaMA-decode", batch)
	headDim := llmHidden / llmHeads

	for l := 0; l < llmLayers; l++ {
		b.matmul(layerName("qkv", l), batch, llmHidden, 3*llmHidden, false)
		b.actMatmul(layerName("scores", l), batch*llmHeads, headDim, ctx, false)
		b.vec(layerName("softmax", l), compiler.Softmax, int64(batch)*int64(llmHeads)*int64(ctx), 4)
		b.actMatmul(layerName("ctx", l), batch*llmHeads, ctx, headDim, false)
		b.matmul(layerName("o-proj", l), batch, llmHidden, llmHidden, false)
		b.vec(layerName("rmsnorm1", l), compiler.LayerNorm, int64(batch)*llmHidden, 3)
		b.matmul(layerName("gate-up", l), batch, llmHidden, 2*llmFFN, true) // fused SiLU
		b.matmul(layerName("ffn-down", l), batch, llmFFN, llmHidden, false)
		b.vec(layerName("rmsnorm2", l), compiler.LayerNorm, int64(batch)*llmHidden, 3)
	}
	b.matmul("lm-head", batch, llmHidden, llmVocab, false)

	kv := int64(batch) * int64(ctx+1) * LLMKVBytesPerToken()
	return b.finish(LLMWeightBytes() + kv)
}
