package model

import "testing"

// TestLLMPhaseGraphsValid: both phase builders must produce graphs that
// pass the same validation the registry models do, across the bucketed
// shapes the serving layer asks for.
func TestLLMPhaseGraphsValid(t *testing.T) {
	for _, batch := range []int{1, 4, 16} {
		for _, seq := range []int{16, 256, 1024} {
			if err := LLMPrefill(batch, seq).Validate(); err != nil {
				t.Errorf("prefill(%d, %d): %v", batch, seq, err)
			}
			if err := LLMDecode(batch, seq).Validate(); err != nil {
				t.Errorf("decode(%d, %d): %v", batch, seq, err)
			}
		}
	}
}

// TestLLMPhaseAsymmetry pins the prefill/decode split the serving layer
// builds on: prefill is compute-heavy (ME-leaning, work scaling with
// prompt length), decode is memory-bound (MEs mostly idle, like the
// registry LLaMA it mirrors).
func TestLLMPhaseAsymmetry(t *testing.T) {
	pre := cm().ProfileGraph(LLMPrefill(8, 256))
	dec := cm().ProfileGraph(LLMDecode(8, 256))
	if pre.M <= dec.M {
		t.Errorf("prefill m=%.3f not more ME-intensive than decode m=%.3f", pre.M, dec.M)
	}
	if dec.M > 0.5 {
		t.Errorf("decode m=%.3f; a single-token step should leave MEs mostly idle", dec.M)
	}
	if pre.TotalCycles <= dec.TotalCycles {
		t.Errorf("prefill of 256 tokens (%v cycles) not costlier than one decode step (%v cycles)",
			pre.TotalCycles, dec.TotalCycles)
	}
	// Prefill work grows with the prompt.
	long := cm().ProfileGraph(LLMPrefill(8, 512))
	if long.TotalCycles <= pre.TotalCycles {
		t.Errorf("prefill cycles did not grow with prompt length: %v vs %v",
			long.TotalCycles, pre.TotalCycles)
	}
}

// TestLLMAccountingConstants: the KV/weight constants the serving
// layer's memory partitioning uses must match the architecture the
// graphs encode.
func TestLLMAccountingConstants(t *testing.T) {
	// 13B-class parameter count (the LLaMA2-13B case study).
	if p := LLMParams(); p < 12e9 || p > 14e9 {
		t.Errorf("LLM parameter count %d outside the 13B class", p)
	}
	if LLMWeightBytes() != 2*LLMParams() {
		t.Errorf("weights %d not bf16 (2 bytes/param)", LLMWeightBytes())
	}
	// K+V per token per layer, bf16: 2 · layers · hidden · 2.
	if got, want := LLMKVBytesPerToken(), int64(2*40*5120*2); got != want {
		t.Errorf("KV bytes/token %d, want %d", got, want)
	}
	// One decoded token's cache must be tiny next to the weights — the
	// premise that makes KV capacity a count of thousands of tokens.
	if LLMKVBytesPerToken()*1000 > LLMWeightBytes() {
		t.Error("1k tokens of KV outweigh the model — accounting constants implausible")
	}
}
