// Package virt models the system-software layer of Neu10 (paper Fig. 11
// and §III-F): a KVM-style hypervisor that mediates only the management
// plane (three hypercalls: create, reconfigure, free), SR-IOV-style PCIe
// virtual functions with per-vNPU MMIO register files, guest command
// rings that the device fetches without hypervisor involvement, and an
// IOMMU that remaps and isolates guest DMA.
//
// The layer is an in-process model — there is no kernel here — but the
// control/data-path split is structural: the tests assert that after
// setup, submissions and completions never touch the hypervisor.
package virt

import "fmt"

// PageWords is the IOMMU page size in float32 words (16 KiB pages).
const PageWords = 4096

// IOMMU provides per-domain DMA remapping: device-visible guest frame
// numbers → host physical frames, with isolation between domains.
type IOMMU struct {
	domains map[int]*IOMMUDomain
	nextID  int
}

// NewIOMMU builds an empty IOMMU.
func NewIOMMU() *IOMMU {
	return &IOMMU{domains: map[int]*IOMMUDomain{}}
}

// IOMMUDomain is one VF's translation context.
type IOMMUDomain struct {
	ID    int
	vm    *GuestVM
	pages map[int64]int64 // guest frame -> host frame (into vm.Mem)
}

// CreateDomain allocates a translation domain bound to a guest VM's
// memory.
func (i *IOMMU) CreateDomain(vm *GuestVM) *IOMMUDomain {
	d := &IOMMUDomain{ID: i.nextID, vm: vm, pages: map[int64]int64{}}
	i.nextID++
	i.domains[d.ID] = d
	return d
}

// DestroyDomain tears down a domain (part of vNPU free).
func (i *IOMMU) DestroyDomain(d *IOMMUDomain) {
	delete(i.domains, d.ID)
	d.pages = nil
}

// Map establishes identity-offset mappings for a guest buffer
// [addr, addr+words). Addresses are in float32 words. The buffer must be
// page-aligned for simplicity, as real DMA buffers are.
func (d *IOMMUDomain) Map(addr, words int64) error {
	if addr%PageWords != 0 {
		return fmt.Errorf("virt: DMA buffer at %d not page-aligned", addr)
	}
	if addr < 0 || addr+words > int64(len(d.vm.Mem)) {
		return fmt.Errorf("virt: DMA buffer [%d,+%d) outside guest memory (%d words)",
			addr, words, len(d.vm.Mem))
	}
	for f := addr / PageWords; f <= (addr+words-1)/PageWords; f++ {
		d.pages[f] = f // identity into this guest's memory; isolation is per-domain
	}
	return nil
}

// Unmap removes mappings for a buffer.
func (d *IOMMUDomain) Unmap(addr, words int64) {
	for f := addr / PageWords; f <= (addr+words-1)/PageWords; f++ {
		delete(d.pages, f)
	}
}

// translate resolves one word address, faulting on unmapped pages —
// the DMA-isolation property of §III-F.
func (d *IOMMUDomain) translate(addr int64) (int64, error) {
	frame, ok := d.pages[addr/PageWords]
	if !ok {
		return 0, fmt.Errorf("virt: IOMMU fault: unmapped DMA at guest word %d (domain %d)", addr, d.ID)
	}
	return frame*PageWords + addr%PageWords, nil
}

// ReadGuest DMA-reads words from guest memory through the domain.
func (d *IOMMUDomain) ReadGuest(addr int64, dst []float32) error {
	for i := range dst {
		pa, err := d.translate(addr + int64(i))
		if err != nil {
			return err
		}
		dst[i] = d.vm.Mem[pa]
	}
	return nil
}

// WriteGuest DMA-writes words into guest memory through the domain.
func (d *IOMMUDomain) WriteGuest(addr int64, src []float32) error {
	for i := range src {
		pa, err := d.translate(addr + int64(i))
		if err != nil {
			return err
		}
		d.vm.Mem[pa] = src[i]
	}
	return nil
}
