package virt

import (
	"sync"
	"testing"
)

// TestSwitchCyclesModel pins the temporal-share context-switch cost
// model: positive, engine-count-monotone, and exactly the documented
// per-engine decomposition.
func TestSwitchCyclesModel(t *testing.T) {
	if got, want := SwitchCycles(1, 1), float64(SwitchBaseCycles+SwitchPerMECycles+SwitchPerVECycles); got != want {
		t.Errorf("SwitchCycles(1,1) = %v, want %v", got, want)
	}
	if got, want := SwitchCycles(2, 2), float64(SwitchBaseCycles+2*SwitchPerMECycles+2*SwitchPerVECycles); got != want {
		t.Errorf("SwitchCycles(2,2) = %v, want %v", got, want)
	}
	if SwitchCycles(4, 2) <= SwitchCycles(2, 2) {
		t.Error("switch cost not monotone in ME count")
	}
	if got, want := SwitchCycles(-3, -1), float64(SwitchBaseCycles); got != want {
		t.Errorf("negative engine counts not clamped: %v, want %v", got, want)
	}
}

// TestSwitchLedgerTotals checks the ledger sums preempt/resume traffic
// exactly and symmetrically.
func TestSwitchLedgerTotals(t *testing.T) {
	var l SwitchLedger
	var want float64
	for i := 0; i < 5; i++ {
		want += l.RecordPreempt(2, 2)
		want += l.RecordResume(2, 2)
	}
	p, r, oh := l.Snapshot()
	if p != 5 || r != 5 {
		t.Errorf("ledger counted %d preempts / %d resumes, want 5/5", p, r)
	}
	if oh != want {
		t.Errorf("ledger overhead %v, want %v", oh, want)
	}
}

// TestSwitchLedgerConcurrent hammers the ledger from many goroutines —
// the -race CI step for this package leans on it.
func TestSwitchLedgerConcurrent(t *testing.T) {
	var l SwitchLedger
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.RecordPreempt(1, 1)
				l.RecordResume(1, 1)
			}
		}()
	}
	wg.Wait()
	p, r, oh := l.Snapshot()
	if p != workers*each || r != workers*each {
		t.Errorf("concurrent ledger lost events: %d preempts / %d resumes", p, r)
	}
	if want := float64(2*workers*each) * SwitchCycles(1, 1); oh != want {
		t.Errorf("concurrent overhead %v, want %v", oh, want)
	}
}
