package virt

import (
	"fmt"

	"neu10/internal/core"
	"neu10/internal/isa"
)

// GuestVM is a tenant virtual machine: a name and its guest-physical
// memory (float32 words), from which DMA buffers and command rings are
// carved.
type GuestVM struct {
	Name string
	Mem  []float32
}

// NewGuestVM allocates a guest with the given memory size in words.
func NewGuestVM(name string, words int) *GuestVM {
	return &GuestVM{Name: name, Mem: make([]float32, words)}
}

// CmdOp is a command-buffer opcode.
type CmdOp int

const (
	// CmdMemcpyH2D copies Words from guest address Guest to device HBM
	// address Dev.
	CmdMemcpyH2D CmdOp = iota
	// CmdMemcpyD2H copies Words from device HBM address Dev to guest
	// address Guest.
	CmdMemcpyD2H
	// CmdLaunch executes the NeuISA binary Prog on the vNPU. The binary
	// addresses SRAM directly; staging between HBM and SRAM is part of
	// the program (DMA slots), as on real NPUs.
	CmdLaunch
	// CmdLaunchVLIW executes a traditional VLIW binary (compatibility
	// path for unported workloads).
	CmdLaunchVLIW
)

// Command is one command-buffer entry.
type Command struct {
	Op    CmdOp
	Guest int64
	Dev   int64
	Words int64
	Prog  []byte // encoded isa binary for launches
}

const defaultRingSlots = 256

// CommandRing is the guest-filled, device-drained submission ring that
// lives in guest memory (Fig. 11: "the NPU hardware directly fetches the
// commands from the host memory without the hypervisor intervention").
type CommandRing struct {
	slots []Command
	head  int // device consumes here
	tail  int // guest produces here
	count int
}

// NewCommandRing builds a ring with n slots.
func NewCommandRing(n int) *CommandRing { return &CommandRing{slots: make([]Command, n)} }

// Push enqueues a command; it fails when the ring is full.
func (r *CommandRing) Push(c Command) error {
	if r.count == len(r.slots) {
		return fmt.Errorf("virt: command ring full (%d slots)", len(r.slots))
	}
	r.slots[r.tail] = c
	r.tail = (r.tail + 1) % len(r.slots)
	r.count++
	return nil
}

// Pop dequeues the oldest command.
func (r *CommandRing) Pop() (Command, bool) {
	if r.count == 0 {
		return Command{}, false
	}
	c := r.slots[r.head]
	r.head = (r.head + 1) % len(r.slots)
	r.count--
	return c, true
}

// Pending returns queued command count.
func (r *CommandRing) Pending() int { return r.count }

// Driver is the guest's para-virtualized vNPU driver (§III-F): it issues
// the management hypercalls, then talks to the device exclusively
// through the command ring and MMIO.
type Driver struct {
	vm *GuestVM
	hv *Hypervisor
	vf *VF
}

// Attach creates a vNPU for the VM and returns its driver.
func Attach(hv *Hypervisor, vm *GuestVM, cfg core.VNPUConfig, mode core.IsolationMode) (*Driver, error) {
	vf, err := hv.HypercallCreateVNPU(vm, cfg, mode)
	if err != nil {
		return nil, err
	}
	return &Driver{vm: vm, hv: hv, vf: vf}, nil
}

// Hierarchy queries the vNPU configuration (chips, cores, MEs/VEs,
// memory) exactly as a guest driver enumerates a PCIe device.
func (d *Driver) Hierarchy() core.VNPUConfig { return d.vf.VNPU.Config }

// MapDMA registers a guest buffer for device DMA (hypercall; setup path).
func (d *Driver) MapDMA(addr, words int64) error {
	return d.hv.HypercallMapDMA(d.vf, addr, words)
}

// Submit enqueues a command. No hypercall: pure guest-memory write.
func (d *Driver) Submit(c Command) error { return d.vf.ring.Push(c) }

// MemcpyH2D enqueues a host-to-device copy.
func (d *Driver) MemcpyH2D(dev, guest, words int64) error {
	return d.Submit(Command{Op: CmdMemcpyH2D, Dev: dev, Guest: guest, Words: words})
}

// MemcpyD2H enqueues a device-to-host copy.
func (d *Driver) MemcpyD2H(guest, dev, words int64) error {
	return d.Submit(Command{Op: CmdMemcpyD2H, Dev: dev, Guest: guest, Words: words})
}

// Launch enqueues a NeuISA program execution.
func (d *Driver) Launch(p *isa.NeuProgram) error {
	return d.Submit(Command{Op: CmdLaunch, Prog: p.Encode()})
}

// LaunchVLIW enqueues a VLIW program execution.
func (d *Driver) LaunchVLIW(p *isa.Program) error {
	return d.Submit(Command{Op: CmdLaunchVLIW, Prog: p.Encode()})
}

// RingDoorbell kicks the device: it drains the command ring. In this
// in-process model the device work happens synchronously inside the
// doorbell write; on hardware it would proceed asynchronously, with the
// guest polling MMIO or taking the completion interrupt.
func (d *Driver) RingDoorbell() {
	d.vf.MMIO.Doorbell++
	d.vf.process()
}

// Completions reads the completion counter from MMIO (polling path).
func (d *Driver) Completions() uint64 { return d.vf.MMIO.Completions }

// Status reads the device status register.
func (d *Driver) Status() uint32 { return d.vf.MMIO.Status }

// OnCompletion installs the completion-interrupt handler.
func (d *Driver) OnCompletion(fn func(seq uint64)) { d.vf.OnCompletion = fn }

// Detach frees the vNPU (hypercall 3).
func (d *Driver) Detach() error { return d.hv.HypercallFreeVNPU(d.vf) }

// process drains the ring on the device. Faults set the error status
// and stop the queue, as a real device would.
func (vf *VF) process() {
	vf.MMIO.Status = StatusBusy
	for {
		cmd, ok := vf.ring.Pop()
		if !ok {
			break
		}
		if err := vf.execute(cmd); err != nil {
			vf.MMIO.Status = StatusError
			vf.MMIO.ErrorCode = 1
			return
		}
		vf.MMIO.Completions++
		if vf.OnCompletion != nil {
			vf.OnCompletion(vf.MMIO.Completions)
		}
	}
	vf.MMIO.Status = StatusIdle
}

func (vf *VF) execute(cmd Command) error {
	switch cmd.Op {
	case CmdMemcpyH2D:
		buf := make([]float32, cmd.Words)
		if err := vf.domain.ReadGuest(cmd.Guest, buf); err != nil {
			return err
		}
		return vf.dev.WriteHBM(int(cmd.Dev), buf)
	case CmdMemcpyD2H:
		buf, err := vf.dev.ReadHBM(int(cmd.Dev), int(cmd.Words))
		if err != nil {
			return err
		}
		return vf.domain.WriteGuest(cmd.Guest, buf)
	case CmdLaunch:
		prog, err := isa.DecodeNeuProgram(cmd.Prog)
		if err != nil {
			return err
		}
		mes := make([]int, vf.dev.Cfg.MEs)
		for i := range mes {
			mes[i] = i
		}
		_, err = vf.dev.RunNeu(prog, mes)
		return err
	case CmdLaunchVLIW:
		prog, err := isa.DecodeProgram(cmd.Prog)
		if err != nil {
			return err
		}
		_, err = vf.dev.RunVLIW(prog)
		return err
	default:
		return fmt.Errorf("virt: unknown command op %d", cmd.Op)
	}
}
