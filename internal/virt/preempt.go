package virt

import "sync"

// Temporal-share context switching. When two tenants' batches
// interleave on one vNPU slot (internal/serve's preemptive temporal
// sharing), every preemption checkpoints the victim's architectural
// state and every resume restores it. The cost model follows the
// paper's reclaim accounting (§III-G): each ME pays the pop-partials +
// pop-weights drain the 256-cycle reclaim penalty prices, each VE pays
// a register-file save, and the slot pays a fixed command-queue
// drain/descriptor-swap cost once per switch. The ledger below is the
// management-plane view of that traffic — the analogue of Hypervisor.
// Hypercalls for the data path: serving layers record every switch
// here so reports can show exactly how many cycles temporal sharing
// stole from useful service.

const (
	// SwitchBaseCycles is the per-switch fixed cost: draining the slot's
	// command queue and swapping the device context descriptor.
	SwitchBaseCycles = 128
	// SwitchPerMECycles is the per-ME checkpoint cost — pop partial sums
	// and pop weights, the same drain the §III-G reclaim penalty models.
	SwitchPerMECycles = 256
	// SwitchPerVECycles is the per-VE register-file save/restore cost.
	SwitchPerVECycles = 64
)

// SwitchCycles returns the context-switch cost, in cycles, of
// checkpointing (or restoring) a batch on a vNPU slot with nm MEs and
// nv VEs. Save and restore are symmetric, so one preempt/resume pair
// costs 2×SwitchCycles.
func SwitchCycles(nm, nv int) float64 {
	if nm < 0 {
		nm = 0
	}
	if nv < 0 {
		nv = 0
	}
	return float64(SwitchBaseCycles + SwitchPerMECycles*nm + SwitchPerVECycles*nv)
}

// SwitchLedger aggregates temporal-share context-switch accounting.
// A serving fleet embeds its own ledger and drives it from a
// single-threaded event loop; the locking exists so one ledger can
// also be shared as a cross-run aggregate (several scenario runs on a
// worker pool feeding one management-plane accountant), following the
// same locking discipline as Hypervisor.
type SwitchLedger struct {
	mu             sync.Mutex
	preemptions    int
	resumes        int
	overheadCycles float64
}

// RecordPreempt charges one checkpoint save on an nm×nv slot and
// returns its cost in cycles.
func (l *SwitchLedger) RecordPreempt(nm, nv int) float64 {
	c := SwitchCycles(nm, nv)
	l.mu.Lock()
	l.preemptions++
	l.overheadCycles += c
	l.mu.Unlock()
	return c
}

// RecordResume charges one checkpoint restore on an nm×nv slot and
// returns its cost in cycles.
func (l *SwitchLedger) RecordResume(nm, nv int) float64 {
	c := SwitchCycles(nm, nv)
	l.mu.Lock()
	l.resumes++
	l.overheadCycles += c
	l.mu.Unlock()
	return c
}

// Snapshot returns the totals recorded so far.
func (l *SwitchLedger) Snapshot() (preemptions, resumes int, overheadCycles float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.preemptions, l.resumes, l.overheadCycles
}
