package virt

import (
	"strings"
	"testing"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/isa"
	"neu10/internal/tensor"
)

func testHV(t *testing.T) *Hypervisor {
	t.Helper()
	hv, err := NewHypervisor(2, arch.TPUv4Like())
	if err != nil {
		t.Fatal(err)
	}
	return hv
}

func smallVNPU() core.VNPUConfig {
	return core.VNPUConfig{
		NumChips: 1, NumCoresPerChip: 1,
		NumMEsPerCore: 2, NumVEsPerCore: 2,
		SRAMSizePerCore: 8 << 20, MemSizePerCore: 2 << 30,
	}
}

func TestVNPULifecycle(t *testing.T) {
	hv := testHV(t)
	vm := NewGuestVM("tenant-a", 1<<16)
	drv, err := Attach(hv, vm, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Live() != 1 {
		t.Fatalf("live VFs = %d", hv.Live())
	}
	h := drv.Hierarchy()
	if h.NumMEsPerCore != 2 || h.NumVEsPerCore != 2 {
		t.Fatalf("hierarchy %+v", h)
	}
	if drv.Status() != StatusIdle {
		t.Fatal("fresh device not idle")
	}
	if err := drv.Detach(); err != nil {
		t.Fatal(err)
	}
	if hv.Live() != 0 || hv.Manager().Live() != 0 {
		t.Fatal("vNPU not torn down")
	}
}

func TestHypercallReconfigure(t *testing.T) {
	hv := testHV(t)
	vm := NewGuestVM("t", 1<<16)
	drv, err := Attach(hv, vm, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallVNPU()
	cfg.NumMEsPerCore = 3
	if err := hv.HypercallReconfigureVNPU(drv.vf, cfg); err != nil {
		t.Fatal(err)
	}
	if drv.Hierarchy().NumMEsPerCore != 3 {
		t.Fatal("reconfigure did not apply")
	}
}

// TestEndToEndInference drives the full stack: guest writes tensors into
// its memory, maps DMA buffers, copies to the device, launches a staged
// NeuISA matmul, copies the result back, and checks it against the
// reference — with zero hypercalls on the submission path.
func TestEndToEndInference(t *testing.T) {
	const m, k, n = 16, 64, isa.VectorLanes
	hv := testHV(t)
	vm := NewGuestVM("tenant-a", 1<<20)
	drv, err := Attach(hv, vm, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}

	// Guest-side data (page-aligned buffers).
	a := tensor.New(m, k)
	bm := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(i%13) - 6
	}
	for i := range bm.Data {
		bm.Data[i] = float32(i%7)/2 - 1.5
	}
	want := tensor.ReLU(tensor.MatMul(a, bm))

	const gA, gB, gC = 0, 8 * PageWords, 16 * PageWords
	copy(vm.Mem[gA:], a.Data)
	copy(vm.Mem[gB:], bm.Data)
	for _, buf := range [][2]int64{{gA, m * k}, {gB, k * n}, {gC, m * n}} {
		if err := drv.MapDMA(buf[0], buf[1]); err != nil {
			t.Fatal(err)
		}
	}
	setupCalls := hv.Hypercalls

	// Device memory layout (vNPU HBM words) and SRAM staging layout.
	const hA, hB, hC = 0, 16384, 32768
	const sA, sB, sC = 0, 8192, 65536
	prog, err := compiler.LowerMatMul(m, k, n, 2, true,
		compiler.MatMulLayout{ABase: sA, BBase: sB, CBase: sC}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := compiler.WrapWithHBMStaging(prog,
		[]compiler.Transfer{{SRAM: sA, HBM: hA, Words: m * k}, {SRAM: sB, HBM: hB, Words: k * n}},
		[]compiler.Transfer{{SRAM: sC, HBM: hC, Words: m * n}}); err != nil {
		t.Fatal(err)
	}

	// Submission path: command ring + doorbell, no hypervisor.
	completions := 0
	drv.OnCompletion(func(uint64) { completions++ })
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(drv.MemcpyH2D(hA, gA, m*k))
	must(drv.MemcpyH2D(hB, gB, k*n))
	must(drv.Launch(prog))
	must(drv.MemcpyD2H(gC, hC, m*n))
	drv.RingDoorbell()

	if drv.Status() != StatusIdle {
		t.Fatalf("device status %d after run", drv.Status())
	}
	if drv.Completions() != 4 || completions != 4 {
		t.Fatalf("completions = %d (interrupts %d), want 4", drv.Completions(), completions)
	}
	if hv.Hypercalls != setupCalls {
		t.Fatalf("submission path made %d hypercalls", hv.Hypercalls-setupCalls)
	}

	got := tensor.New(m, n)
	copy(got.Data, vm.Mem[gC:gC+m*n])
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("end-to-end result differs from reference by %v", d)
	}
}

func TestIOMMUFaultStopsDevice(t *testing.T) {
	hv := testHV(t)
	vm := NewGuestVM("t", 1<<18)
	drv, err := Attach(hv, vm, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	// No MapDMA: the copy must fault and set error status.
	if err := drv.MemcpyH2D(0, 0, 128); err != nil {
		t.Fatal(err)
	}
	drv.RingDoorbell()
	if drv.Status() != StatusError {
		t.Fatalf("unmapped DMA did not fault the device (status %d)", drv.Status())
	}
	if drv.Completions() != 0 {
		t.Fatal("faulting command counted as completed")
	}
}

func TestIOMMUUnmapRevokesAccess(t *testing.T) {
	hv := testHV(t)
	vm := NewGuestVM("t", 1<<18)
	drv, err := Attach(hv, vm, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.MapDMA(0, PageWords); err != nil {
		t.Fatal(err)
	}
	if err := drv.MemcpyH2D(0, 0, 64); err != nil {
		t.Fatal(err)
	}
	drv.RingDoorbell()
	if drv.Status() != StatusIdle {
		t.Fatal("mapped DMA failed")
	}
	drv.vf.domain.Unmap(0, PageWords)
	if err := drv.MemcpyH2D(0, 0, 64); err != nil {
		t.Fatal(err)
	}
	drv.RingDoorbell()
	if drv.Status() != StatusError {
		t.Fatal("revoked mapping still usable")
	}
}

func TestIOMMURejectsUnalignedAndOutOfRange(t *testing.T) {
	i := NewIOMMU()
	vm := NewGuestVM("t", PageWords*4)
	d := i.CreateDomain(vm)
	if err := d.Map(5, 100); err == nil {
		t.Fatal("unaligned map accepted")
	}
	if err := d.Map(0, PageWords*100); err == nil {
		t.Fatal("out-of-range map accepted")
	}
	if err := d.Map(PageWords, PageWords); err != nil {
		t.Fatal(err)
	}
}

func TestCommandRingFIFOAndOverflow(t *testing.T) {
	r := NewCommandRing(4)
	for i := 0; i < 4; i++ {
		if err := r.Push(Command{Dev: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Push(Command{}); err == nil {
		t.Fatal("overflow accepted")
	}
	for i := 0; i < 4; i++ {
		c, ok := r.Pop()
		if !ok || c.Dev != int64(i) {
			t.Fatalf("FIFO broken at %d: %+v", i, c)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("empty ring popped")
	}
	// Wrap-around reuse.
	for i := 0; i < 6; i++ {
		if err := r.Push(Command{Dev: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
		c, _ := r.Pop()
		if c.Dev != int64(100+i) {
			t.Fatal("wraparound broken")
		}
	}
}

func TestTwoTenantsIsolatedMemories(t *testing.T) {
	hv := testHV(t)
	vmA := NewGuestVM("a", 1<<18)
	vmB := NewGuestVM("b", 1<<18)
	drvA, err := Attach(hv, vmA, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	drvB, err := Attach(hv, vmB, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	if err := drvA.MapDMA(0, PageWords); err != nil {
		t.Fatal(err)
	}
	if err := drvB.MapDMA(0, PageWords); err != nil {
		t.Fatal(err)
	}
	vmA.Mem[7] = 111
	vmB.Mem[7] = 222
	// Round-trip each tenant's word through its own device HBM; the D2H
	// target PageWords/2 lies inside the already-mapped first page.
	for _, d := range []*Driver{drvA, drvB} {
		if err := d.MemcpyH2D(0, 0, 16); err != nil {
			t.Fatal(err)
		}
		if err := d.MemcpyD2H(PageWords/2, 0, 16); err != nil {
			t.Fatal(err)
		}
	}
	drvA.RingDoorbell()
	drvB.RingDoorbell()
	if drvB.Status() == StatusError || drvA.Status() == StatusError {
		t.Fatal("device errored")
	}
	if vmA.Mem[PageWords/2+7] != 111 || vmB.Mem[PageWords/2+7] != 222 {
		t.Fatalf("cross-tenant contamination: A=%v B=%v",
			vmA.Mem[PageWords/2+7], vmB.Mem[PageWords/2+7])
	}
}

func TestOversizedVNPURejected(t *testing.T) {
	hv := testHV(t)
	vm := NewGuestVM("t", 1<<16)
	cfg := smallVNPU()
	cfg.NumMEsPerCore = 99
	if _, err := Attach(hv, vm, cfg, core.SpatialIsolated); err == nil {
		t.Fatal("oversized vNPU accepted")
	}
	if hv.Live() != 0 {
		t.Fatal("failed attach leaked a VF")
	}
}

func TestBadProgramFaultsDevice(t *testing.T) {
	hv := testHV(t)
	vm := NewGuestVM("t", 1<<16)
	drv, err := Attach(hv, vm, smallVNPU(), core.SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	if err := drv.Submit(Command{Op: CmdLaunch, Prog: []byte("garbage")}); err != nil {
		t.Fatal(err)
	}
	drv.RingDoorbell()
	if drv.Status() != StatusError {
		t.Fatal("garbage binary did not fault")
	}
}

func TestTemporalSharedAttach(t *testing.T) {
	hv := testHV(t)
	// Four 2+2 vNPUs on two 4+4 cores via temporal sharing.
	for i := 0; i < 4; i++ {
		vm := NewGuestVM(strings.Repeat("x", i+1), 1<<14)
		if _, err := Attach(hv, vm, smallVNPU(), core.TemporalShared); err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	if hv.Live() != 4 {
		t.Fatalf("live = %d", hv.Live())
	}
}
