package virt

import (
	"fmt"
	"sync"

	"neu10/internal/arch"
	"neu10/internal/core"
	"neu10/internal/npu"
)

// Hypervisor mediates vNPU management (and nothing else). It owns the
// vNPU manager (a host kernel module in the paper) and the physical
// device inventory; the data path bypasses it entirely.
type Hypervisor struct {
	mu    sync.Mutex
	mgr   *core.Manager
	iommu *IOMMU
	vfs   map[int]*VF

	// Hypercalls counts management-plane calls; the tests use it to
	// prove the §III-F property that submissions are zero-hypercall.
	Hypercalls int
}

// NewHypervisor builds a hypervisor over n single-core physical NPUs.
func NewHypervisor(n int, coreCfg arch.CoreConfig) (*Hypervisor, error) {
	mgr, err := core.NewManager(n, coreCfg)
	if err != nil {
		return nil, err
	}
	return &Hypervisor{mgr: mgr, iommu: NewIOMMU(), vfs: map[int]*VF{}}, nil
}

// MMIORegs is the vNPU's memory-mapped register file, accessed by the
// guest through PCIe BAR mappings (modeled as direct struct access; the
// point is which operations go through it versus through hypercalls).
type MMIORegs struct {
	Status      uint32 // 0 idle, 1 busy, 2 error
	Doorbell    uint32 // write-to-kick
	Completions uint64 // commands retired
	ErrorCode   uint32
}

// Status values.
const (
	StatusIdle  = 0
	StatusBusy  = 1
	StatusError = 2
)

// VF is an SR-IOV virtual function: the guest-visible PCIe device for
// one vNPU. It bundles the vNPU mapping, a private functional core view
// sized to the vNPU's configuration, the MMIO registers, and the IOMMU
// domain for its DMA.
type VF struct {
	VNPU   *core.VNPU
	MMIO   MMIORegs
	domain *IOMMUDomain
	dev    *npu.Core
	ring   *CommandRing
	// OnCompletion, when set, is invoked after each retired command —
	// the interrupt path (the guest may instead poll MMIO.Completions).
	OnCompletion func(seq uint64)
}

// HypercallCreateVNPU implements hypercall 1: allocate and map a vNPU,
// set up its device context, IOMMU domain and MMIO space, and return the
// VF. This is the only way to obtain a device.
func (h *Hypervisor) HypercallCreateVNPU(vm *GuestVM, cfg core.VNPUConfig, mode core.IsolationMode) (*VF, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Hypercalls++
	v, err := h.mgr.Create(vm.Name, cfg, mode)
	if err != nil {
		return nil, err
	}
	devCfg := npu.DefaultConfig()
	devCfg.MEs = cfg.NumMEsPerCore
	devCfg.VEs = cfg.NumVEsPerCore
	devCfg.SRAMWords = int(cfg.SRAMSizePerCore / 4)
	// Cap the functional HBM model: the vNPU's logical capacity can be
	// tens of GB; the functional simulator only needs a working set.
	hbmWords := cfg.MemSizePerCore / 4
	if hbmWords > 1<<24 {
		hbmWords = 1 << 24
	}
	devCfg.HBMWords = int(hbmWords)
	dev, err := npu.NewCore(devCfg)
	if err != nil {
		_ = h.mgr.Free(v.ID)
		return nil, fmt.Errorf("virt: device context: %w", err)
	}
	vf := &VF{
		VNPU:   v,
		domain: h.iommu.CreateDomain(vm),
		dev:    dev,
	}
	vf.ring = NewCommandRing(defaultRingSlots)
	h.vfs[v.ID] = vf
	return vf, nil
}

// HypercallReconfigureVNPU implements hypercall 2: resize a vNPU.
func (h *Hypervisor) HypercallReconfigureVNPU(vf *VF, cfg core.VNPUConfig) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Hypercalls++
	return h.mgr.Reconfigure(vf.VNPU.ID, cfg)
}

// HypercallFreeVNPU implements hypercall 3: tear down the vNPU context,
// DMA mappings and VF.
func (h *Hypervisor) HypercallFreeVNPU(vf *VF) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Hypercalls++
	if _, ok := h.vfs[vf.VNPU.ID]; !ok {
		return fmt.Errorf("virt: VF for vNPU %d not found", vf.VNPU.ID)
	}
	h.iommu.DestroyDomain(vf.domain)
	delete(h.vfs, vf.VNPU.ID)
	return h.mgr.Free(vf.VNPU.ID)
}

// HypercallMapDMA implements the DMA-buffer registration path (part of
// vNPU setup; the paper routes it through the para-virtualized driver).
func (h *Hypervisor) HypercallMapDMA(vf *VF, addr, words int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.Hypercalls++
	return vf.domain.Map(addr, words)
}

// Manager exposes the underlying vNPU manager (inspection / tooling).
func (h *Hypervisor) Manager() *core.Manager { return h.mgr }

// Live returns the number of active VFs.
func (h *Hypervisor) Live() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.vfs)
}
