package cluster

import (
	"testing"

	"neu10/internal/core"
)

func TestChurnRunBasics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 200
	st, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Arrived < 100 {
		t.Fatalf("only %d arrivals over duration 200 at rate 2", st.Arrived)
	}
	if st.Accepted+st.Rejected != st.Arrived {
		t.Fatalf("accounting broken: %d + %d != %d", st.Accepted, st.Rejected, st.Arrived)
	}
	if st.Departed > st.Accepted {
		t.Fatal("more departures than acceptances")
	}
	if st.MeanEUUtil <= 0 || st.MeanEUUtil > 1 {
		t.Fatalf("mean EU utilization %v out of range", st.MeanEUUtil)
	}
	if st.AcceptanceRate() <= 0.3 {
		t.Fatalf("acceptance rate %.2f implausibly low for this load", st.AcceptanceRate())
	}
}

func TestChurnDeterministicBySeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 100
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Arrived == c.Arrived && a.Accepted == c.Accepted && a.MeanEUUtil == c.MeanEUUtil {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestChurnLoadIncreasesRejections(t *testing.T) {
	light := DefaultConfig()
	light.Duration = 150
	light.ArrivalRate = 1
	heavy := light
	heavy.ArrivalRate = 12
	ls, err := Run(light)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Run(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if hs.AcceptanceRate() >= ls.AcceptanceRate() {
		t.Fatalf("12x load acceptance %.2f not below 1x load %.2f",
			hs.AcceptanceRate(), ls.AcceptanceRate())
	}
	if hs.MeanEUUtil <= ls.MeanEUUtil {
		t.Fatal("heavier load did not raise fleet utilization")
	}
}

func TestCompareRunsSameTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 150
	cfg.ArrivalRate = 8 // pressure so policies differentiate
	res, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d policies compared", len(res))
	}
	g := res[core.GreedyBalance]
	for pol, st := range res {
		if st.Arrived != g.Arrived {
			t.Fatalf("%v saw %d arrivals vs greedy's %d — traces differ", pol, st.Arrived, g.Arrived)
		}
	}
	// The paper's greedy-balance policy should not lose to first-fit on
	// acceptance under pressure (it exists to avoid stranding).
	if g.AcceptanceRate() < res[core.FirstFit].AcceptanceRate()*0.95 {
		t.Errorf("greedy balance acceptance %.3f clearly below first-fit %.3f",
			g.AcceptanceRate(), res[core.FirstFit].AcceptanceRate())
	}
}

func TestBadConfigRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("0-core fleet accepted")
	}
	cfg = DefaultConfig()
	cfg.ArrivalRate = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative arrival rate accepted")
	}
}

func TestPlacementPolicyStrings(t *testing.T) {
	if core.GreedyBalance.String() != "greedy-balance" ||
		core.FirstFit.String() != "first-fit" ||
		core.WorstFit.String() != "worst-fit" {
		t.Fatal("policy names wrong")
	}
}
