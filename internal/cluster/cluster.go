// Package cluster simulates fleet-scale vNPU churn: tenants arrive with
// allocator-sized vNPU requests, hold them for a while, and leave. It
// measures how well a placement policy (the paper's §III-C greedy
// balance vs. first-fit vs. worst-fit) sustains acceptance rate and
// fleet utilization under fragmentation pressure. The paper defers
// cluster-level orchestration to KubeVirt/Kubernetes; this package is
// the extension study showing the mapper's policy matters at that scale.
package cluster

import (
	"fmt"
	"sync"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/model"
	"neu10/internal/sim"
)

// Config parameterizes a churn simulation.
type Config struct {
	Cores  int // fleet size (single-core pNPUs)
	Core   arch.CoreConfig
	Policy core.PlacementPolicy

	// ArrivalRate is tenant arrivals per unit time; MeanLifetime the
	// exponential mean holding time. Time units are abstract.
	ArrivalRate  float64
	MeanLifetime float64
	Duration     float64
	Seed         uint64
}

// DefaultConfig is a moderately loaded 16-core fleet.
func DefaultConfig() Config {
	return Config{
		Cores:        16,
		Core:         arch.TPUv4Like(),
		Policy:       core.GreedyBalance,
		ArrivalRate:  2.0,
		MeanLifetime: 8.0,
		Duration:     500,
		Seed:         1,
	}
}

// Stats summarizes a churn run.
type Stats struct {
	Policy   core.PlacementPolicy
	Arrived  int
	Accepted int
	Rejected int
	Departed int
	// MeanEUUtil is the time-averaged fraction of fleet EUs allocated.
	MeanEUUtil float64
	// MeanStrandedEUs is the time-averaged count of free EUs sitting on
	// cores that cannot host even a small (1 ME + 1 VE) vNPU — pure
	// fragmentation waste.
	MeanStrandedEUs float64
}

// AcceptanceRate returns accepted/arrived.
func (s Stats) AcceptanceRate() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Arrived)
}

// StrandedEUs counts the free EUs sitting on cores that cannot host even
// the smallest (1 ME + 1 VE) vNPU — engines with no engine-partner or no
// free memory segment left, i.e. pure fragmentation waste. It is the
// instantaneous form of Stats.MeanStrandedEUs and is shared with the
// online serving fleet (internal/serve), which reports the same quantity
// time-averaged over a serving run.
func StrandedEUs(m *core.Mapper) int {
	stranded := 0
	for _, p := range m.PNPUs() {
		free := p.FreeMEs() + p.FreeVEs()
		if free > 0 && (p.FreeMEs() < 1 || p.FreeVEs() < 1 || p.FreeHBMSegments() < 1 || p.FreeSRAMSegments() < 1) {
			stranded += free
		}
	}
	return stranded
}

// requestCatalog builds realistic vNPU shapes: each bundled model
// profiled and sized by the Eq. 4 allocator at a sampled EU budget.
func requestCatalog(coreCfg arch.CoreConfig) ([]core.VNPUConfig, error) {
	cm := compiler.NewCostModel(coreCfg)
	alloc, err := core.NewAllocator(coreCfg)
	if err != nil {
		return nil, err
	}
	var out []core.VNPUConfig
	for _, name := range model.Names() {
		g, err := model.Build(name, 8)
		if err != nil {
			return nil, err
		}
		p := cm.ProfileGraph(g)
		for _, eus := range []int{2, 4, 6} {
			a, err := alloc.Allocate(p, g.HBMFootprint, eus)
			if err != nil {
				return nil, err
			}
			cfg := alloc.ConfigFor(a)
			if cfg.NumMEsPerCore > coreCfg.MEs || cfg.NumVEsPerCore > coreCfg.VEs {
				continue
			}
			// Cap memory so two tenants can share one pNPU's HBM.
			if cfg.MemSizePerCore > coreCfg.HBMBytes/2 {
				cfg.MemSizePerCore = coreCfg.HBMBytes / 2
			}
			out = append(out, cfg)
		}
	}
	return out, nil
}

// Run executes the churn simulation and returns the stats.
func Run(cfg Config) (*Stats, error) {
	if cfg.Cores < 1 || cfg.ArrivalRate <= 0 || cfg.MeanLifetime <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("cluster: bad config %+v", cfg)
	}
	mapper, err := core.NewMapper(cfg.Cores, cfg.Core)
	if err != nil {
		return nil, err
	}
	mapper.Policy = cfg.Policy
	catalog, err := requestCatalog(cfg.Core)
	if err != nil {
		return nil, err
	}

	rng := sim.NewRNG(cfg.Seed)
	eng := sim.NewEngine()
	stats := &Stats{Policy: cfg.Policy}
	nextID := 0
	totalEUs := float64(cfg.Cores * (cfg.Core.MEs + cfg.Core.VEs))

	// Time-weighted accumulators, updated lazily at each event.
	var lastT, utilArea, strandedArea float64
	var allocatedEUs int
	snapshot := func(now float64) {
		dt := now - lastT
		utilArea += float64(allocatedEUs) / totalEUs * dt
		strandedArea += float64(StrandedEUs(mapper)) * dt
		lastT = now
	}

	// The sim engine clock is integer cycles; scale abstract time by 1e6.
	const scale = 1e6
	toTime := func(t float64) sim.Time { return sim.Time(t * scale) }

	var scheduleArrival func(at float64)
	scheduleArrival = func(at float64) {
		if at > cfg.Duration {
			return
		}
		eng.At(toTime(at), func(now sim.Time) {
			tNow := float64(now) / scale
			snapshot(tNow)
			stats.Arrived++
			// Draw every random quantity before the placement decision
			// so the trace (arrivals, shapes, lifetimes) is identical
			// across policies under the same seed.
			req := catalog[rng.Intn(len(catalog))]
			life := rng.Exp(cfg.MeanLifetime)
			gap := rng.Exp(1 / cfg.ArrivalRate)
			v := &core.VNPU{ID: nextID, Tenant: fmt.Sprintf("t%d", nextID), Config: req, State: core.StateCreated}
			nextID++
			if err := mapper.Map(v, core.SpatialIsolated); err != nil {
				stats.Rejected++
			} else {
				stats.Accepted++
				allocatedEUs += req.TotalEUs()
				eng.At(toTime(tNow+life), func(now sim.Time) {
					snapshot(float64(now) / scale)
					if err := mapper.Unmap(v); err == nil {
						stats.Departed++
						allocatedEUs -= req.TotalEUs()
					}
				})
			}
			scheduleArrival(tNow + gap)
		})
	}
	scheduleArrival(rng.Exp(1 / cfg.ArrivalRate))
	eng.Run()
	snapshot(cfg.Duration)

	if lastT > 0 {
		stats.MeanEUUtil = utilArea / cfg.Duration
		stats.MeanStrandedEUs = strandedArea / cfg.Duration
	}
	return stats, nil
}

// Compare runs the same workload trace under each policy (same seed →
// identical arrival sequence) and returns the stats side by side. The
// three runs are independent (each builds its own mapper, RNG and
// engine), so they execute concurrently; results are deterministic
// because each policy's trace depends only on the shared seed.
func Compare(base Config) (map[core.PlacementPolicy]*Stats, error) {
	pols := []core.PlacementPolicy{core.GreedyBalance, core.FirstFit, core.WorstFit}
	stats := make([]*Stats, len(pols))
	errs := make([]error, len(pols))
	var wg sync.WaitGroup
	for i, pol := range pols {
		wg.Add(1)
		go func(i int, pol core.PlacementPolicy) {
			defer wg.Done()
			cfg := base
			cfg.Policy = pol
			stats[i], errs[i] = Run(cfg)
		}(i, pol)
	}
	wg.Wait()
	out := map[core.PlacementPolicy]*Stats{}
	for i, pol := range pols {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[pol] = stats[i]
	}
	return out, nil
}
