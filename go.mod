module neu10

go 1.23
