// Multitenant study: the paper's §V evaluation in one run — the nine
// collocation pairs under the four designs (PMT, V10, Neu10-NH, Neu10),
// reporting tail latency, throughput and utilization, then the Table III
// harvesting-overhead accounting.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"neu10/internal/experiments"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.Requests = 8
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range []string{"fig19", "fig21", "fig22", "table3"} {
		res, err := runner.Run(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Table())
	}
	fmt.Println(`Reading the tables:
 - Fig. 19: Neu10 columns should sit near (or below) 1.0 while V10
   columns spike on the workload sharing with a long-operator partner —
   the VLIW head-of-line blocking Neu10's µTOp scheduling removes.
 - Fig. 21: Neu10 ≥ Neu10-NH everywhere there is harvesting headroom.
 - Table III: the price of being harvested stays in single-digit percent.`)
}
