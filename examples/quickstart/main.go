// Quickstart: virtualize one physical NPU between two tenants and
// measure what each gets.
//
// It walks the whole Neu10 flow: profile the workloads with the compiler
// (§III-B), let the allocator size each vNPU, create the vNPUs through
// the hypervisor's management hypercalls (§III-F), and run the collocated
// inference services on the simulated core under the Neu10 µTOp
// scheduler with harvesting (§III-E).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/model"
	"neu10/internal/sched"
	"neu10/internal/virt"
	"neu10/internal/workload"
)

func main() {
	tpu := arch.TPUv4Like()
	cm := compiler.NewCostModel(tpu)
	alloc, err := core.NewAllocator(tpu)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile the two tenants' workloads and size their vNPUs for a
	//    4-EU pay-as-you-go budget each.
	tenants := []string{"DLRM", "SMask"}
	var cfgs []core.VNPUConfig
	for _, name := range tenants {
		g, err := model.Build(name, workload.BatchFor(name))
		if err != nil {
			log.Fatal(err)
		}
		p := cm.ProfileGraph(g)
		a, err := alloc.Allocate(p, g.HBMFootprint, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s m=%.2f v=%.2f → vNPU with %d MEs + %d VEs (util %.2f)\n",
			name, p.M, p.V, a.MEs, a.VEs, a.Utilization)
		cfg := alloc.ConfigFor(a)
		// Cap HBM to what one pNPU can host alongside a neighbour.
		if cfg.MemSizePerCore > tpu.HBMBytes/2 {
			cfg.MemSizePerCore = tpu.HBMBytes / 2
		}
		cfgs = append(cfgs, cfg)
	}

	// 2. Create the vNPUs through the hypervisor (management hypercalls).
	hv, err := virt.NewHypervisor(1, tpu)
	if err != nil {
		log.Fatal(err)
	}
	for i, name := range tenants {
		vm := virt.NewGuestVM(name, 1<<16)
		drv, err := virt.Attach(hv, vm, cfgs[i], core.SpatialIsolated)
		if err != nil {
			log.Fatal(err)
		}
		h := drv.Hierarchy()
		fmt.Printf("%-6s attached: vNPU with %d MEs, %d VEs, %d MB SRAM\n",
			name, h.NumMEsPerCore, h.NumVEsPerCore, h.SRAMSizePerCore>>20)
	}
	fmt.Printf("hypervisor made %d management hypercalls; the data path makes none\n\n", hv.Hypercalls)

	// 3. Run the collocated inference services under Neu10 scheduling.
	comp, err := workload.NewCompiled(tpu)
	if err != nil {
		log.Fatal(err)
	}
	var specs []sched.TenantSpec
	for i, name := range tenants {
		g, err := comp.Graph(name, workload.BatchFor(name), compiler.ISANeu)
		if err != nil {
			log.Fatal(err)
		}
		specs = append(specs, sched.TenantSpec{
			Name: name, Graph: g,
			MEs: cfgs[i].NumMEsPerCore, VEs: cfgs[i].NumVEsPerCore,
		})
	}
	// The allocator may request more total EUs than the core has; scale
	// to fit for the spatial run.
	for specs[0].MEs+specs[1].MEs > tpu.MEs {
		if specs[0].MEs > specs[1].MEs {
			specs[0].MEs--
		} else {
			specs[1].MEs--
		}
	}
	for specs[0].VEs+specs[1].VEs > tpu.VEs {
		if specs[0].VEs > specs[1].VEs {
			specs[0].VEs--
		} else {
			specs[1].VEs--
		}
	}

	res, err := sched.Run(sched.Config{Core: tpu, Policy: sched.Neu10, Requests: 8}, specs)
	if err != nil {
		log.Fatal(err)
	}
	ms := func(c float64) float64 { return c / tpu.FrequencyHz * 1e3 }
	fmt.Println("collocated inference under Neu10 (spatial isolation + harvesting):")
	for _, tr := range res.Tenants {
		fmt.Printf("  %-6s mean %8.3f ms   p95 %8.3f ms   %8.1f req/s\n",
			tr.Name, ms(tr.MeanLatency), ms(tr.P95Latency), tr.Throughput)
	}
	fmt.Printf("  core utilization: ME %.0f%%, VE %.0f%%\n", res.MEUtil*100, res.VEUtil*100)
}
