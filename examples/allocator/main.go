// Allocator walkthrough: pay-as-you-go vNPU sizing (paper §III-B,
// Fig. 12) for every bundled workload.
//
// For each model the example profiles the operator graph with the
// compiler cost model, derives the ME/VE active fractions (m, v), applies
// the closed-form Eq. 4 ratio, and prints the selected configuration at
// three EU budgets together with the achieved utilization — then shows
// the full sweep for one ME-intensive and one VE-intensive model so the
// Fig. 12 "selected configs" walk is visible.
//
//	go run ./examples/allocator
package main

import (
	"fmt"
	"log"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/model"
	"neu10/internal/workload"
)

func main() {
	tpu := arch.TPUv4Like()
	cm := compiler.NewCostModel(tpu)
	alloc, err := core.NewAllocator(tpu)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("model   m      v      k*      4 EUs   8 EUs   16 EUs")
	fmt.Println("------  -----  -----  ------  ------  ------  ------")
	for _, name := range model.Names() {
		g, err := model.Build(name, workload.BatchFor(name))
		if err != nil {
			log.Fatal(err)
		}
		p := cm.ProfileGraph(g)
		row := fmt.Sprintf("%-6s  %.3f  %.3f  %6.3f", name, p.M, p.V, core.OptimalRatio(p.M, p.V))
		for _, eus := range []int{4, 8, 16} {
			nm, nv, err := alloc.ChooseSplit(p.M, p.V, eus)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("  (%d,%d)", nm, nv)
		}
		fmt.Println(row)
	}

	for _, name := range []string{"BERT", "DLRM"} {
		g, err := model.Build(name, workload.BatchFor(name))
		if err != nil {
			log.Fatal(err)
		}
		p := cm.ProfileGraph(g)
		fmt.Printf("\n%s sweep (m=%.3f v=%.3f): speedup of every split per budget\n", name, p.M, p.V)
		for total := 2; total <= 8; total++ {
			fmt.Printf("  %2d EUs:", total)
			for nm := 1; nm < total; nm++ {
				sp := 1 / core.NormalizedTime(p.M, p.V, nm, total-nm)
				sel, _, err := alloc.ChooseSplit(p.M, p.V, total)
				if err != nil {
					log.Fatal(err)
				}
				marker := " "
				if nm == sel {
					marker = "*"
				}
				fmt.Printf("  (%d,%d)%s%.2f", nm, total-nm, marker, sp)
			}
			fmt.Println()
		}
	}
	fmt.Println("\n(* = allocator's selection; compare with the paper's Fig. 12 walks)")
}
