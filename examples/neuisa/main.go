// NeuISA demo: the paper's core ISA argument on real binaries.
//
// It compiles one fused MatMul+ReLU operator twice — to a traditional
// VLIW binary (ME count baked in) and to a NeuISA binary (per-ME control
// flow split into µTOps) — then executes both on the functional NPU
// simulator, verifies the numerics against the host reference, and shows
// that the NeuISA binary runs unmodified on 1, 2 and 4 matrix engines
// while the VLIW binary refuses anything narrower than it was compiled
// for (Fig. 9).
//
//	go run ./examples/neuisa
package main

import (
	"fmt"
	"log"

	"neu10/internal/compiler"
	"neu10/internal/isa"
	"neu10/internal/npu"
	"neu10/internal/tensor"
)

func main() {
	const m, k, n = 32, 96, isa.VectorLanes

	// Host-side operands and reference result.
	a := tensor.New(m, k)
	b := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(i%17) - 8
	}
	for i := range b.Data {
		b.Data[i] = float32(i%11)/4 - 1.25
	}
	want := tensor.ReLU(tensor.MatMul(a, b))

	lay := compiler.MatMulLayout{ABase: 0, BBase: 16384, CBase: 65536}
	neu, err := compiler.LowerMatMul(m, k, n, 4, true, lay, 4)
	if err != nil {
		log.Fatal(err)
	}
	vliw, err := compiler.LowerMatMulVLIW(m, k, n, 4, true, lay, 4)
	if err != nil {
		log.Fatal(err)
	}

	stats := neu.Stats()
	fmt.Printf("fused MatMul+ReLU %dx%dx%d\n", m, k, n)
	fmt.Printf("NeuISA binary: %d µTOp groups, %d ME µTOps sharing one snippet, %d instructions\n",
		stats.Groups, stats.MEUTops, stats.Instructions)
	fmt.Printf("VLIW binary:   compiled for exactly %d MEs, %d instructions\n\n",
		vliw.Format.MESlots, len(vliw.Code))

	fmt.Println("first µTOp of the NeuISA binary:")
	dump := isa.DumpNeuProgram(neu)
	fmt.Println(truncate(dump, 1200))

	for _, meCount := range []int{1, 2, 4} {
		cfg := npu.DefaultConfig()
		cfg.MEs = meCount
		cfg.SRAMWords = 1 << 18
		cfg.HBMWords = 1 << 12
		coreDev, err := npu.NewCore(cfg)
		if err != nil {
			log.Fatal(err)
		}
		copy(coreDev.SRAM[lay.ABase:], a.Data)
		copy(coreDev.SRAM[lay.BBase:], b.Data)

		mes := make([]int, meCount)
		for i := range mes {
			mes[i] = i
		}
		st, err := coreDev.RunNeu(neu, mes)
		if err != nil {
			log.Fatal(err)
		}
		got := tensor.New(m, n)
		copy(got.Data, coreDev.SRAM[lay.CBase:int(lay.CBase)+m*n])
		diff := tensor.MaxAbsDiff(want, got)
		fmt.Printf("NeuISA on %d ME(s): %5d cycles, %4d instructions, max |err| = %v\n",
			meCount, st.Cycles, st.Instructions, diff)

		// The VLIW binary only runs when the core is at least as wide as
		// its format — the static coupling NeuISA removes.
		if _, err := coreDev.RunVLIW(vliw); err != nil {
			fmt.Printf("VLIW on %d ME(s): refused (%v)\n", meCount, err)
		} else {
			fmt.Printf("VLIW on %d ME(s): ok\n", meCount)
		}
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "\n  ..."
}
