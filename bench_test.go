// Package neu10 holds the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (regenerating its rows through internal/experiments), plus
// microbenchmarks of the performance-critical substrates. Run with:
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks report the wall time to regenerate the
// figure; the figure *contents* are printed by cmd/neu10-bench and
// asserted by the tests in internal/experiments.
package neu10

import (
	"testing"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/experiments"
	"neu10/internal/isa"
	"neu10/internal/model"
	"neu10/internal/npu"
	"neu10/internal/sched"
	"neu10/internal/sim"
	"neu10/internal/workload"
)

func newRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	opts := experiments.DefaultOptions()
	opts.Requests = 4
	r, err := experiments.NewRunner(opts)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func benchExperiment(b *testing.B, id string) {
	r := newRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Table()) == 0 {
			b.Fatal("empty result")
		}
	}
}

// ---- one benchmark per paper table/figure ----

func BenchmarkFig02DemandTimeline(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig04IntensityRatio(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig05Utilization(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig07HBM(b *testing.B)                { benchExperiment(b, "fig7") }
func BenchmarkFig12Allocator(b *testing.B)          { benchExperiment(b, "fig12") }
func BenchmarkFig16NeuISAOverhead(b *testing.B)     { benchExperiment(b, "fig16") }
func BenchmarkFig19TailLatency(b *testing.B)        { benchExperiment(b, "fig19") }
func BenchmarkFig20AvgLatency(b *testing.B)         { benchExperiment(b, "fig20") }
func BenchmarkFig21Throughput(b *testing.B)         { benchExperiment(b, "fig21") }
func BenchmarkFig22Utilization(b *testing.B)        { benchExperiment(b, "fig22") }
func BenchmarkFig23HarvestBreakdown(b *testing.B)   { benchExperiment(b, "fig23") }
func BenchmarkTable3HarvestOverhead(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFig24AssignmentTimeline(b *testing.B) { benchExperiment(b, "fig24") }
func BenchmarkFig25Scaling(b *testing.B)            { benchExperiment(b, "fig25") }
func BenchmarkFig26Bandwidth(b *testing.B)          { benchExperiment(b, "fig26") }
func BenchmarkFig27LLM(b *testing.B)                { benchExperiment(b, "fig27") }

// ---- online serving scenarios ----

// BenchmarkServeSteadyState measures a full steady-state serving run:
// ~23k open-loop requests routed, admitted, batched and completed on an
// autoscaled 4-pNPU fleet (the invocation-cost database amortizes
// across iterations, exactly as it does across scenario runs).
func BenchmarkServeSteadyState(b *testing.B) { benchExperiment(b, "serve-steady") }
func BenchmarkServeFlashCrowd(b *testing.B)  { benchExperiment(b, "serve-flash") }

// BenchmarkServePriority measures the preemptive temporal-sharing
// scenario: ~6k interactive requests preempting ~25 ms batch
// invocations on shared slots (plus the FIFO baseline run), the
// hottest path through the slot scheduler's suspend/resume machinery.
func BenchmarkServePriority(b *testing.B) { benchExperiment(b, "serve-priority") }

// BenchmarkServeLLM measures the KV-cache-aware LLM serving scenario:
// continuous vs static batching of ~100 autoregressive requests (one
// prefill + per-token decode iterations each) on a two-replica fleet,
// the hot path through the iteration-level batcher and KV accountant.
func BenchmarkServeLLM(b *testing.B) { benchExperiment(b, "serve-llm") }

// BenchmarkServeDisagg measures the disaggregated prefill/decode
// scenario: five runs on the identical trace (colocated baseline plus
// a four-point interconnect-bandwidth sweep) — the hot path through
// chunked prefill, the xfer fabric's max-min sharing and the
// KV-migration machinery.
func BenchmarkServeDisagg(b *testing.B) { benchExperiment(b, "serve-disagg") }

// BenchmarkServeChaos measures the fault-injection scenario: three runs
// on the identical trace (healthy, faulted, faulted with recovery) —
// the crash/teardown path, transfer aborts, emergency spawns and
// decode-pool evacuation on top of the disaggregated machinery.
// BenchmarkServeChaos runs with observability OFF (the default);
// compare against BenchmarkServeChaosTraced for the tracing overhead.
func BenchmarkServeChaos(b *testing.B) { benchExperiment(b, "serve-chaos") }

// BenchmarkServeChaosTraced is the identical chaos scenario with
// request-lifecycle tracing and timeline sampling on — the delta vs
// BenchmarkServeChaos is the whole cost of the observability subsystem
// when enabled (when disabled it must cost nothing: the untraced
// benchmarks above are the regression gate for that).
func BenchmarkServeChaosTraced(b *testing.B) { benchExperiment(b, "serve-chaos-traced") }

// BenchmarkServeConsolidate measures the consolidation study: the
// min-chips searches for the merged LLM+vision+recsys cluster and the
// three single-tenant silos — mixed batcher policies (continuous LLM
// plus dynamic batching) sharing slots on one fleet.
func BenchmarkServeConsolidate(b *testing.B) { benchExperiment(b, "serve-consolidate") }

// BenchmarkServePaged measures the KV-backend comparison scenario:
// three runs on the identical multi-turn session trace (full
// reservation, paged with evict-recompute, paged with evict-swap) —
// the hot path through block-on-demand granting, radix prefix-cache
// matching/sealing, youngest-first eviction and the host swap link.
func BenchmarkServePaged(b *testing.B) { benchExperiment(b, "serve-paged") }

// BenchmarkServeAttrib measures the latency-attribution scenario: three
// ledger-on runs (full reservation, paged, disaggregated) on one
// session trace — the whole cost of exact per-request segment
// accounting and the fleet cycle ledger on top of serving (the
// ledger-off benchmarks above are the zero-overhead regression gate).
func BenchmarkServeAttrib(b *testing.B) { benchExperiment(b, "serve-attrib") }

// ---- substrate microbenchmarks ----

// BenchmarkSystolicArrayGEMM measures the functional matrix engine: one
// 128-row tile multiply through the weight-stationary array.
func BenchmarkSystolicArrayGEMM(b *testing.B) {
	s := npu.NewSystolicArray(128)
	w := make([]float32, 128*128)
	x := make([]float32, 128)
	for i := range w {
		w[i] = float32(i % 7)
	}
	if err := s.LoadWeights(w, 128, 128); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Push(x); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Pop(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalNeuISARun measures full NeuISA interpretation of a
// lowered 32x96x128 fused MatMul+ReLU on 4 MEs.
func BenchmarkFunctionalNeuISARun(b *testing.B) {
	lay := compiler.MatMulLayout{ABase: 0, BBase: 16384, CBase: 65536}
	prog, err := compiler.LowerMatMul(32, 96, isa.VectorLanes, 4, true, lay, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := npu.DefaultConfig()
	cfg.SRAMWords = 1 << 18
	cfg.HBMWords = 1 << 12
	core, err := npu.NewCore(cfg)
	if err != nil {
		b.Fatal(err)
	}
	mes := []int{0, 1, 2, 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunNeu(prog, mes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalVLIWRun measures the predecoded VLIW interpreter
// on a lowered 32x96x128 fused MatMul+ReLU using all 4 ME slots.
func BenchmarkFunctionalVLIWRun(b *testing.B) {
	lay := compiler.MatMulLayout{ABase: 0, BBase: 16384, CBase: 65536}
	prog, err := compiler.LowerMatMulVLIW(32, 96, isa.VectorLanes, 4, true, lay, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := npu.DefaultConfig()
	cfg.SRAMWords = 1 << 18
	cfg.HBMWords = 1 << 12
	core, err := npu.NewCore(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunVLIW(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProgramDecode measures the decode-once cost the interpreter
// amortizes away (it rebuilds the cache from scratch each iteration).
func BenchmarkProgramDecode(b *testing.B) {
	prog, err := compiler.LowerMatMul(64, 128, isa.VectorLanes, 4, true, compiler.MatMulLayout{}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dc := isa.DecodeCode(prog.MECode); dc.Len() != len(prog.MECode) {
			b.Fatal("bad decode")
		}
	}
}

// BenchmarkISAEncodeDecode measures binary round-tripping of a lowered
// NeuISA program (driver launch path).
func BenchmarkISAEncodeDecode(b *testing.B) {
	prog, err := compiler.LowerMatMul(64, 128, isa.VectorLanes, 4, true, compiler.MatMulLayout{}, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bin := prog.Encode()
		if _, err := isa.DecodeNeuProgram(bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileBERT measures graph construction plus NeuISA
// compilation for the largest transformer workload.
func BenchmarkCompileBERT(b *testing.B) {
	comp, err := compiler.New(arch.TPUv4Like())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		g, err := model.Build("BERT", 32)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := comp.Compile(g, compiler.ISANeu); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerSteadyState measures the fluid simulator on the
// paper's default scenario (DLRM+SMask under Neu10, 4 requests each).
func BenchmarkSchedulerSteadyState(b *testing.B) {
	core := arch.TPUv4Like()
	comp, err := workload.NewCompiled(core)
	if err != nil {
		b.Fatal(err)
	}
	specs, err := comp.Tenants(workload.Pair{W1: "DLRM", W2: "SMask"}, sched.Neu10, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(sched.Config{Core: core, Policy: sched.Neu10, Requests: 4}, specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventQueue measures the discrete-event kernel.
func BenchmarkEventQueue(b *testing.B) {
	e := sim.NewEngine()
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+sim.Time(rng.Intn(1000)), func(sim.Time) {})
		if i%64 == 63 {
			for e.Step() {
			}
		}
	}
}

// BenchmarkAllocatorSweep measures the Eq. 2 exhaustive split search the
// allocator performs per workload.
func BenchmarkAllocatorSweep(b *testing.B) {
	r := newRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fig12Allocator(); err != nil {
			b.Fatal(err)
		}
	}
}
